"""Algorithm 1 micro-benchmark: HOI Tucker decomposition throughput.

Times the core kernel every experiment relies on — Tucker-2 of a
transformer-sized weight matrix — and checks its optimality against the
closed-form truncated SVD.
"""

import numpy as np
import pytest

from repro.decomposition import (
    best_rank_k_approximation,
    hoi,
    relative_error,
    tucker2,
)


@pytest.fixture(scope="module")
def weight_matrix():
    # tiny-llama MLP down-projection shape, the largest tensor we decompose.
    return np.random.default_rng(0).normal(size=(176, 64))


def test_alg1_tucker2_rank1(benchmark, weight_matrix):
    u1, core, u2 = benchmark(tucker2, weight_matrix, 1, "hoi")
    err = relative_error(weight_matrix, u1 @ core @ u2)
    optimal = relative_error(
        weight_matrix, best_rank_k_approximation(weight_matrix, 1)
    )
    assert err == pytest.approx(optimal, abs=1e-8)


def test_alg1_hoi_3way(benchmark):
    tensor = np.random.default_rng(1).normal(size=(32, 32, 32))
    result = benchmark(hoi, tensor, (4, 4, 4), 50, 1e-6)
    assert result.converged
    assert 0.0 <= result.error(tensor) <= 1.0


def test_alg1_svd_path(benchmark, weight_matrix):
    u1, core, u2 = benchmark(tucker2, weight_matrix, 8, "svd")
    assert relative_error(weight_matrix, u1 @ core @ u2) < relative_error(
        weight_matrix, np.zeros_like(weight_matrix)
    )
