"""Figure 11: parameter reduction vs energy consumption."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.tradeoff import per_point_slopes, run_efficiency_tradeoff
from repro.hwmodel import A100_80GB, measure_energy_like_paper


def test_fig11_energy_vs_reduction(benchmark, capsys):
    points = run_once(benchmark, run_efficiency_tradeoff)

    with capsys.disabled():
        print("\n[Figure 11] Llama-2-7B on 4x A100: energy vs parameter reduction")
        print(f"{'target':>7}{'energy (kJ)':>13}{'saving':>9}")
        for p in points:
            print(
                f"{p.target_reduction_pct:>6}%{p.energy_j / 1000:>12.1f}"
                f"{100 * p.energy_saving:>8.1f}%"
            )

    # ~0.5% energy per 1% parameters, identical to the latency slope: at
    # saturation the GPU pins at its 300 W cap, so energy tracks time.
    slopes = per_point_slopes(points)
    assert 0.35 <= slopes["energy_saving"] <= 0.65
    assert slopes["energy_saving"] == pytest.approx(slopes["latency_saving"], abs=1e-9)

    energies = [p.energy_j for p in points]
    assert energies == sorted(energies, reverse=True)


def test_fig11_power_trace_methodology(benchmark, capsys):
    """The paper's measurement protocol: >=2 min run, integrate the
    nvidia-smi power trace."""
    per_batch, trace = run_once(
        benchmark, measure_energy_like_paper, A100_80GB, 2.0
    )
    with capsys.disabled():
        print(
            f"\n[Figure 11, methodology] {trace.duration_s:.0f}s trace, "
            f"mean {trace.mean_watts:.0f} W, {per_batch:.0f} J/batch"
        )
    assert trace.duration_s >= 118.0
    assert per_batch == pytest.approx(2.0 * A100_80GB.tdp_watts, rel=0.05)
