"""Table 1: model size, MACs, and compute-to-model-size ratio."""

from benchmarks.conftest import run_once
from repro.analysis import format_table1, table1_rows


def test_table1_compute_to_model_size(benchmark, capsys):
    rows = run_once(benchmark, table1_rows)

    with capsys.disabled():
        print("\n[Table 1] Model size / computations / compute-to-size ratio")
        print(format_table1(rows))

    by_model = {row.model: row for row in rows}
    # Paper values: 51.1 MB / 219 MB / 13.4 GB; 11.2 B / 850 B MACs.
    assert abs(by_model["llama2-7b"].macs - 850e9) / 850e9 < 0.005
    assert abs(by_model["bert-base"].macs - 11.2e9) / 11.2e9 < 0.01
    assert abs(by_model["bert-base"].size_bytes - 219e6) / 219e6 < 0.01
    # The motivating ordering: CNN reuse far above the language models.
    assert (
        by_model["resnet50"].compute_to_model_size_ratio
        > 1.2 * by_model["llama2-7b"].compute_to_model_size_ratio
    )
    assert (
        by_model["llama2-7b"].compute_to_model_size_ratio
        > by_model["bert-base"].compute_to_model_size_ratio
    )
