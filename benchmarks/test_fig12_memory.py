"""Figure 12: parameter reduction vs GPU memory footprint."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tradeoff import per_point_slopes, run_efficiency_tradeoff


def test_fig12_memory_vs_reduction(benchmark, capsys):
    points = run_once(benchmark, run_efficiency_tradeoff)

    with capsys.disabled():
        print("\n[Figure 12] Llama-2-7B on 4x A100: per-GPU memory vs reduction")
        print(f"{'target':>7}{'mem/GPU (GB)':>14}{'saving':>9}")
        for p in points:
            print(
                f"{p.target_reduction_pct:>6}%{p.memory_per_gpu_gb:>13.1f}"
                f"{100 * p.memory_saving:>8.1f}%"
            )

    # The paper: ~0.4% total GPU memory per 1% parameters — weights are
    # only part of the footprint (activations + CUDA context dilute it).
    slopes = per_point_slopes(points)
    assert 0.25 <= slopes["memory_saving"] <= 0.55

    memories = [p.memory_per_gpu_gb for p in points]
    assert memories == sorted(memories, reverse=True)
    # Memory savings are smaller than latency savings at every point.
    for p in points:
        assert p.memory_saving < p.latency_saving
