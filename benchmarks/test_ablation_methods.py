"""Ablations over the library's design choices (DESIGN.md call-outs).

1. Decomposition method: HOI (Algorithm 1) vs closed-form truncated SVD vs
   randomized SVD — identical subspaces for matrices, very different cost.
2. Decomposition format: Tucker-2 vs CP at matched parameter budgets on
   *trained* weights.
3. Serving phase: prefill vs decode savings from the same decomposition.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.decomposition import (
    DecompositionConfig,
    best_rank_k_approximation,
    cp_matrix,
    cp_parameters,
    factorized_parameters,
    randomized_svd,
    relative_error,
    table4_layers,
    truncated_svd,
    tucker2,
)
from repro.hwmodel import A100_80GB, compare_to_baseline, generation_profile
from repro.models import LLAMA2_7B


@pytest.fixture(scope="module")
def trained_weight(trained):
    model, _ = trained
    owner, attr = model.tensor_slot(5, "w_d")
    return getattr(owner, attr).weight.data.astype(np.float64)


class TestMethodAblation:
    def test_hoi_method(self, benchmark, trained_weight):
        u1, core, u2 = benchmark(tucker2, trained_weight, 4, "hoi")
        self._assert_optimal(trained_weight, u1 @ core @ u2, 4)

    def test_svd_method(self, benchmark, trained_weight):
        u1, core, u2 = benchmark(tucker2, trained_weight, 4, "svd")
        self._assert_optimal(trained_weight, u1 @ core @ u2, 4)

    def test_randomized_svd_method(self, benchmark, trained_weight):
        u, s, vt = benchmark(randomized_svd, trained_weight, 4)
        approx = (u * s) @ vt
        error = relative_error(trained_weight, approx)
        optimal = relative_error(
            trained_weight, best_rank_k_approximation(trained_weight, 4)
        )
        assert error <= optimal * 1.02 + 1e-9

    @staticmethod
    def _assert_optimal(weight, approx, rank):
        error = relative_error(weight, approx)
        optimal = relative_error(weight, best_rank_k_approximation(weight, rank))
        assert error == pytest.approx(optimal, abs=1e-6)


class TestFormatAblation:
    def test_cp_vs_tucker_at_matched_budget(self, benchmark, capsys, trained_weight):
        h, w = trained_weight.shape

        def sweep():
            rows = []
            for tucker_rank in (1, 2, 4, 8, 16):
                budget = factorized_parameters(h, w, tucker_rank)
                cp_rank = max(1, budget // (h + w + 1))
                u1, core, u2 = tucker2(trained_weight, tucker_rank, method="svd")
                a, s, b = cp_matrix(trained_weight, cp_rank)
                rows.append(
                    (
                        budget,
                        tucker_rank,
                        relative_error(trained_weight, u1 @ core @ u2),
                        cp_rank,
                        relative_error(trained_weight, a @ np.diag(s) @ b.T),
                    )
                )
            return rows

        rows = run_once(benchmark, sweep)
        with capsys.disabled():
            print("\n[Ablation] Tucker-2 vs CP on a trained W_D (176x64)")
            print(f"{'params':>8}{'tucker r':>9}{'err':>8}{'cp r':>6}{'err':>8}")
            for budget, tr, terr, cr, cerr in rows:
                print(f"{budget:>8}{tr:>9}{terr:>8.3f}{cr:>6}{cerr:>8.3f}")
        # CP never loses at matched budget (no r^2 core to pay for).
        for _, _, tucker_error, _, cp_error in rows:
            assert cp_error <= tucker_error + 1e-9


class TestPhaseAblation:
    def test_decode_vs_prefill_savings(self, benchmark, capsys):
        gamma = DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(48), rank=1)

        def drive():
            prefill = compare_to_baseline(LLAMA2_7B, gamma)
            dense = generation_profile(LLAMA2_7B, A100_80GB, 1, 128, 64)
            treated = generation_profile(
                LLAMA2_7B, A100_80GB, 1, 128, 64, decomposition=gamma
            )
            decode_saving = 1.0 - treated.decode_s / dense.decode_s
            return prefill["latency_saving"], decode_saving

        prefill_saving, decode_saving = run_once(benchmark, drive)
        with capsys.disabled():
            print(
                f"\n[Ablation] 48% reduction: prefill latency saving "
                f"{100 * prefill_saving:.1f}%, decode-phase saving "
                f"{100 * decode_saving:.1f}%"
            )
        assert 0.0 < prefill_saving < 1.0
        assert 0.0 < decode_saving < 1.0
