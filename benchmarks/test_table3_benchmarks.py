"""Table 3: the benchmark suite inventory."""

from benchmarks.conftest import run_once
from repro.eval import BENCHMARK_NAMES, PAPER_TABLE3, build_suite
from repro.experiments.pretrained import get_world


def test_table3_benchmark_inventory(benchmark, capsys):
    suite = run_once(benchmark, build_suite, get_world())

    with capsys.disabled():
        print("\n[Table 3] Benchmark suite (paper sample counts vs synthetic)")
        header = f"{'benchmark':<15}{'task':<58}{'paper n':>8}{'ours n':>8}"
        print(header)
        for name, (kind, paper_n) in PAPER_TABLE3.items():
            print(f"{name:<15}{kind:<58}{paper_n:>8}{len(suite[name]):>8}")

    assert set(suite) == set(BENCHMARK_NAMES)
    # Difficulty inventory: QA, completion, multitask, truthfulness, math.
    assert all(len(task) >= 100 for task in suite.values())
