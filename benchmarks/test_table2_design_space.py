"""Table 2: decomposition design-space size per model."""

from benchmarks.conftest import run_once
from repro.analysis import format_table2, table2_rows


def test_table2_design_space_scale(benchmark, capsys):
    rows = run_once(benchmark, table2_rows)

    with capsys.disabled():
        print("\n[Table 2] Decomposition design-space scale")
        print(format_table2(rows))

    expected = {
        "bert-base": "O(2^18)",
        "bert-large": "O(2^30)",
        "llama2-7b": "O(2^37)",
        "llama2-70b": "O(2^85)",
    }
    for row in rows:
        assert row.scale_paper == expected[row.model]
