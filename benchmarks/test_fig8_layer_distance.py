"""Figure 8: distance between decomposed layers vs accuracy."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.layer_choice import format_layer_distance, run_layer_distance

LIMIT = 50


def test_fig8_spread_layers_beat_consecutive(benchmark, capsys, trained):
    points = run_once(
        benchmark, run_layer_distance, n_decomposed=4, strides=(1, 2, 3), limit=LIMIT
    )

    with capsys.disabled():
        print("\n[Figure 8] Same layer count, increasing spacing (stride)")
        print(format_layer_distance(points))

    def mean_without_truthfulqa(point):
        return float(
            np.mean([v for k, v in point.accuracy.items() if k != "truthfulqa"])
        )

    consecutive = next(p for p in points if p.stride == 1)
    widest = next(p for p in points if p.stride == max(pt.stride for pt in points))
    # The paper's finding (which it notes holds for every benchmark except
    # TruthfulQA): spreading decomposed layers apart preserves accuracy.
    assert mean_without_truthfulqa(widest) > mean_without_truthfulqa(consecutive)
    # Parameter reduction is identical across strides — pure placement.
    assert len({round(p.actual_reduction, 6) for p in points}) == 1
