"""Figure 7: which single layer hurts most when decomposed."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.layer_choice import (
    edge_vs_middle_gap,
    format_layer_sensitivity,
    run_layer_sensitivity,
)

LIMIT = 30


def test_fig7_first_layers_most_sensitive(benchmark, capsys, trained):
    points = run_once(benchmark, run_layer_sensitivity, limit=LIMIT)

    with capsys.disabled():
        print("\n[Figure 7] Aggregate accuracy when decomposing a single layer")
        print(format_layer_sensitivity(points))

    by_layer = {p.layer: p.mean_accuracy for p in points}
    n_layers = len(by_layer)
    middle = [by_layer[l] for l in range(2, n_layers - 1)]

    # The paper: the first layers are markedly more sensitive than the
    # middle of the stack.
    assert by_layer[0] < min(middle)
    # Aggregate edge-vs-middle gap is positive.
    assert edge_vs_middle_gap(points) > 0.0
