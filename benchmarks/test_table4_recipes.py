"""Table 4: decomposed-layer recipes and their parameter-reduction rates."""

import pytest

from benchmarks.conftest import run_once
from repro.decomposition import PAPER_TABLE4, table4_layers
from repro.models import LLAMA2_7B
from repro.models.params import parameter_reduction


def _compute_rows():
    rows = []
    for target in sorted(PAPER_TABLE4):
        layers = table4_layers(target)
        actual = parameter_reduction(LLAMA2_7B, layers, LLAMA2_7B.tensor_roles, 1)
        rows.append((target, actual, layers))
    return rows


def test_table4_reduction_rates(benchmark, capsys):
    rows = run_once(benchmark, _compute_rows)

    with capsys.disabled():
        print("\n[Table 4] Layer recipes vs parameter reduction (Llama-2-7B, rank 1)")
        print(f"{'target':>7}{'actual':>9}{'#layers':>9}")
        for target, actual, layers in rows:
            print(f"{target:>6}%{100 * actual:>8.1f}%{len(layers):>9}")

    # Every recipe reproduces the paper's reduction percentage.
    for target, actual, _ in rows:
        assert 100 * actual == pytest.approx(target, abs=0.6)
    # Reduction is monotone in the recipe's aggressiveness.
    actuals = [actual for _, actual, _ in rows]
    assert actuals == sorted(actuals)
