"""Ablation: low-rank decomposition vs quantization vs pruning.

The paper motivates decomposition as one of the memory-footprint levers
alongside quantization and sparsity (Section 1).  This bench measures all
three on the same trained model, reporting (memory saving over the touched
weights, task accuracy) points — the trade-off map a practitioner needs.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.compression import (
    prune_model_weights,
    quantize_model_weights,
    restore_pruned,
    restore_quantized,
)
from repro.decomposition import DecompositionConfig, decomposed
from repro.eval import build_suite, evaluate_suite
from repro.experiments import get_world

LIMIT = 40
BENCHES = ("arc_easy", "arc_challenge", "winogrande")


def test_compression_method_comparison(benchmark, capsys, trained):
    model, tokenizer = trained
    suite = build_suite(get_world(), names=BENCHES)
    all_layers = tuple(range(model.config.n_layers))
    roles = model.config.tensor_roles

    def drive():
        rows = []
        baseline = evaluate_suite(model, tokenizer, suite, limit=LIMIT).mean_accuracy
        rows.append(("dense fp16 baseline", 0.0, baseline))

        # Rank-1 Tucker on two spread layers (the paper's modest recipe).
        gamma = DecompositionConfig.all_tensors(model.config, (3, 8), rank=1)
        with decomposed(model, gamma) as report:
            accuracy = evaluate_suite(model, tokenizer, suite, limit=LIMIT).mean_accuracy
        rows.append(("tucker rank-1, 2 layers", report.parameter_reduction, accuracy))

        # 8-bit and 4-bit quantization of every decomposable tensor.
        for bits in (8, 4):
            report = quantize_model_weights(model, all_layers, roles, bits=bits)
            try:
                accuracy = evaluate_suite(
                    model, tokenizer, suite, limit=LIMIT
                ).mean_accuracy
            finally:
                restore_quantized(model, report)
            rows.append((f"int{bits} quantization", report.memory_reduction, accuracy))

        # Magnitude pruning at 50% (no CSR saving) and 90% (real saving).
        for sparsity in (0.5, 0.9):
            report = prune_model_weights(model, all_layers, roles, sparsity)
            try:
                accuracy = evaluate_suite(
                    model, tokenizer, suite, limit=LIMIT
                ).mean_accuracy
            finally:
                restore_pruned(model, report)
            rows.append(
                (f"{int(100 * sparsity)}% magnitude pruning",
                 report.memory_reduction, accuracy)
            )
        return rows

    rows = run_once(benchmark, drive)

    with capsys.disabled():
        print("\n[Ablation] Compression methods on the trained tiny Llama")
        print(f"{'method':<26}{'mem saving':>11}{'accuracy':>10}")
        for name, saving, accuracy in rows:
            print(f"{name:<26}{100 * saving:>10.1f}%{100 * accuracy:>9.1f}%")

    by_name = {name: (saving, acc) for name, saving, acc in rows}
    baseline_acc = by_name["dense fp16 baseline"][1]
    # int8 quantization: ~50% memory saving at near-zero accuracy cost.
    assert by_name["int8 quantization"][0] > 0.45
    assert by_name["int8 quantization"][1] >= baseline_acc - 0.05
    # Aggressive pruning saves memory but costs accuracy.
    assert by_name["90% magnitude pruning"][0] > 0.3
    # Decomposition trades a real reduction for a bounded drop.
    saving, accuracy = by_name["tucker rank-1, 2 layers"]
    assert saving > 0.10
    assert accuracy >= baseline_acc - 0.25
