"""Figure 6: one-tensor-many-layers vs all-tensors-few-layers."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tensor_choice import (
    format_tensor_choice,
    run_tensor_vs_layer_tradeoff,
)

LIMIT = 40


def test_fig6_all_tensors_few_layers_wins(benchmark, capsys, trained):
    points = run_once(benchmark, run_tensor_vs_layer_tradeoff, limit=LIMIT)

    with capsys.disabled():
        print("\n[Figure 6] Matched parameter reduction: single role everywhere "
              "vs all tensors in few layers (rightmost black bar)")
        print(format_tensor_choice(points))

    *single_role, matched = points
    assert matched.label.startswith("all tensors")
    # The paper's Observation 2: the all-tensors-few-layers configuration
    # preserves far more accuracy at the same reduction.
    best_single = max(p.mean_accuracy for p in single_role)
    assert matched.mean_accuracy > best_single
    # And the reduction really is matched (within a couple of points).
    mean_single_reduction = np.mean([p.actual_reduction for p in single_role])
    assert matched.actual_reduction >= mean_single_reduction - 0.02
