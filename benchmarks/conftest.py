"""Benchmark-suite fixtures.

Each benchmark module regenerates one paper artifact (table or figure):
it runs the experiment driver under pytest-benchmark, prints the same
rows/series the paper reports, and asserts the qualitative shape
(who wins, rough factors, crossovers).

Expensive experiment drivers run with ``benchmark.pedantic(rounds=1)``;
micro-kernels (HOI, SVD) use the default calibrated timing loop.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def trained():
    """The cached pretrained tiny Llama (trains on first ever use)."""
    from repro.experiments.pretrained import pretrained_tiny_llama

    return pretrained_tiny_llama()


def run_once(benchmark, fn, *args, **kwargs):
    """Time one execution of an experiment driver."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
