"""Figure 10: parameter reduction vs inference latency / speedup."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.tradeoff import (
    format_efficiency_tradeoff,
    measured_speedup,
    per_point_slopes,
    run_efficiency_tradeoff,
)


def test_fig10_latency_vs_reduction(benchmark, capsys):
    points = run_once(benchmark, run_efficiency_tradeoff)

    with capsys.disabled():
        print("\n[Figure 10] Llama-2-7B on 4x A100: latency vs parameter reduction")
        print(format_efficiency_tradeoff(points))

    # The paper: ~0.5% latency saving per 1% parameter reduction.
    slopes = per_point_slopes(points)
    assert 0.35 <= slopes["latency_saving"] <= 0.65

    # Latency decreases monotonically with reduction (linear scaling).
    latencies = [p.latency_s for p in points]
    assert latencies == sorted(latencies, reverse=True)
    reductions = np.array([p.actual_reduction for p in points])
    correlation = np.corrcoef(reductions, latencies)[0, 1]
    assert correlation < -0.99


def test_fig10_measured_numpy_speedup(benchmark, capsys):
    """Ground the analytic curve with a real wall-clock measurement."""
    result = run_once(
        benchmark, measured_speedup, reduction_target=96, batch=8, seq_len=64
    )
    with capsys.disabled():
        print(
            f"\n[Figure 10, measured] dim-512 model, {100 * result['parameter_reduction']:.0f}% "
            f"reduction: {1000 * result['dense_s']:.1f} ms -> "
            f"{1000 * result['decomposed_s']:.1f} ms "
            f"({result['speedup']:.2f}x speedup)"
        )
    assert result["speedup"] > 1.0
