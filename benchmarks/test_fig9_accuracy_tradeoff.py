"""Figure 9: parameter-reduction sweep vs per-benchmark accuracy."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tradeoff import (
    format_accuracy_tradeoff,
    run_accuracy_tradeoff,
)

LIMIT = 40
TARGETS = (6, 9, 15, 21, 48, 96)


def test_fig9_accuracy_vs_reduction(benchmark, capsys, trained):
    points = run_once(
        benchmark, run_accuracy_tradeoff, reduction_targets=TARGETS, limit=LIMIT
    )

    with capsys.disabled():
        print("\n[Figure 9] Accuracy at each Table 4 parameter-reduction level")
        print(format_accuracy_tradeoff(points))

    baseline = points[0]
    by_target = {p.target_reduction_pct: p for p in points}

    # Headline: a modest (~9%-recipe) reduction costs little aggregate
    # accuracy, while near-total (96%) decomposition destroys the model.
    assert by_target[9].mean_accuracy > baseline.mean_accuracy - 0.15
    assert by_target[96].mean_accuracy < baseline.mean_accuracy - 0.20

    # Easy benchmarks start higher than hard ones at baseline (the paper's
    # easy/hard classification by absolute accuracy).
    assert baseline.accuracy["arc_easy"] > baseline.accuracy["mmlu"]
    assert baseline.accuracy["arc_easy"] > baseline.accuracy["gsm8k"]

    # WinoGrande is the most robust benchmark (least degradation).
    drops = {
        name: baseline.accuracy[name] - by_target[21].accuracy[name]
        for name in baseline.accuracy
        if name != "truthfulqa"  # inverse behaviour, excluded as in the paper
    }
    assert drops["winogrande"] <= min(drops.values()) + 0.10

    # TruthfulQA's reverse trend: at extreme reduction the score moves
    # back toward chance rather than to zero.
    assert by_target[96].accuracy["truthfulqa"] >= min(
        by_target[t].accuracy["truthfulqa"] for t in (6, 9, 15, 21)
    )
