"""Fixtures for the tensor-parallel backend tests.

Every equivalence test runs against one tiny GQA Llama: small enough to
shard/forward in milliseconds, awkward enough to be honest — an odd vocab
(97) so vocab blocks split unevenly, 4 query heads over 2 KV heads so the
GQA cover replicates at world size 4.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.decomposition import DecompositionConfig, decompose_model
from repro.models import build_model
from repro.models.config import ModelConfig

TINY = ModelConfig(
    name="tiny",
    family="llama",
    vocab_size=97,
    dim=32,
    n_layers=2,
    n_heads=4,
    mlp_hidden=40,
    max_seq_len=64,
    n_kv_heads=2,
)

WORLD_SIZES = (1, 2, 4)


def build_tiny(tie_lm_head: bool = False, decomposition: DecompositionConfig = None):
    config = replace(TINY, tie_lm_head=tie_lm_head) if tie_lm_head else TINY
    model = build_model(config, rng=np.random.default_rng(0))
    model.eval()
    if decomposition is not None:
        decompose_model(model, decomposition)
    return model


VARIANT_BUILDERS = {
    "dense": lambda: build_tiny(),
    "tied-head": lambda: build_tiny(tie_lm_head=True),
    "partial-rank4": lambda: build_tiny(
        decomposition=DecompositionConfig.uniform(
            layers=(0, 1), roles=("w_q", "w_d"), rank=4
        )
    ),
    "all-tensors-rank2": lambda: build_tiny(
        decomposition=DecompositionConfig.all_tensors(TINY, layers=(0, 1), rank=2)
    ),
}


@pytest.fixture(scope="module")
def variant_models():
    """One model per variant, built once and shared read-only: sharding
    copies weights and ragged runs only mutate per-call caches."""
    return {name: build() for name, build in VARIANT_BUILDERS.items()}


def prompt_batch(rows: int, cols: int, seed: int = 7) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, TINY.vocab_size, size=(rows, cols))


def ragged_steps():
    """A prefill step with uneven rows, then two joint decode steps."""
    rng = np.random.default_rng(3)
    prefill = rng.integers(0, TINY.vocab_size, size=(2, 5))
    decode_a = rng.integers(0, TINY.vocab_size, size=(2, 1))
    decode_b = rng.integers(0, TINY.vocab_size, size=(2, 1))
    return [
        (prefill, np.array([5, 3])),
        (decode_a, np.array([1, 1])),
        (decode_b, np.array([1, 1])),
    ]


def assert_valid_rows_equal(got: np.ndarray, want: np.ndarray, lengths) -> None:
    """Exact comparison over each row's valid prefix (padded tail positions
    of a ragged batch hold garbage by contract)."""
    for row, length in enumerate(lengths):
        np.testing.assert_array_equal(got[row, :length], want[row, :length])


def run_canonical_ragged(model):
    """Reference logits per step from the canonical single-process model."""
    from repro.nn.kv_cache import ModelKVCache

    caches = [ModelKVCache(model.config.n_layers) for _ in range(2)]
    outputs = []
    for tokens, lengths in ragged_steps():
        outputs.append(model.forward_ragged(tokens, caches, lengths).data)
    return outputs
