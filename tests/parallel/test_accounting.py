"""Measured collective traffic must equal the analytic projection exactly."""

import numpy as np
import pytest

from repro.hwmodel.device import get_gpu
from repro.parallel import ShardedLlama, analytic_comm, gathered_width

from tests.parallel.conftest import TINY, build_tiny, prompt_batch, ragged_steps


class TestAnalyticFormulas:
    def test_gathered_width(self):
        # 2 layers * (3*32 + 40) + 97
        assert gathered_width(TINY) == 2 * (3 * 32 + 40) + 97

    def test_projection_arithmetic(self):
        proj = analytic_comm(TINY, padded_tokens=10, world_size=4, forward_calls=3)
        assert proj.calls == 3 * (4 * TINY.n_layers + 1)
        assert proj.payload_bytes == 4 * 10 * gathered_width(TINY)
        assert proj.wire_bytes == 3 * proj.payload_bytes
        assert proj.to_dict()["wire_bytes"] == proj.wire_bytes

    def test_single_rank_latency_is_zero(self):
        proj = analytic_comm(TINY, padded_tokens=10, world_size=1)
        assert proj.wire_bytes == 0
        assert proj.latency_s(get_gpu("a100-80gb")) == 0.0

    def test_latency_scales_with_wire_bytes(self):
        gpu = get_gpu("a100-80gb")
        small = analytic_comm(TINY, padded_tokens=10, world_size=2)
        large = analytic_comm(TINY, padded_tokens=1000, world_size=2)
        assert large.latency_s(gpu) > small.latency_s(gpu) > 0.0


class TestMeasuredAgreesExactly:
    @pytest.fixture(scope="class")
    def model(self):
        return build_tiny()

    @pytest.mark.parametrize("world_size", [1, 2, 4])
    @pytest.mark.parametrize("shape", [(1, 1), (2, 9), (3, 4)])
    def test_plain_forward_bytes(self, model, world_size, shape):
        sharded = ShardedLlama(model, world_size)
        try:
            sharded.forward(prompt_batch(*shape))
            measured = sharded.comm_stats()
            projected = sharded.comm_projection()
        finally:
            sharded.close()
        assert measured.calls == projected.calls
        assert measured.payload_bytes == projected.payload_bytes
        assert measured.wire_bytes == projected.wire_bytes
        assert projected.payload_bytes == 4 * shape[0] * shape[1] * gathered_width(TINY)

    @pytest.mark.parametrize("world_size", [2, 4])
    def test_ragged_steps_accumulate_exactly(self, model, world_size):
        """Padded ragged batches count padded slots: the executor gathers
        rectangular tensors, and the ledger must reflect that."""
        sharded = ShardedLlama(model, world_size)
        try:
            caches = [sharded.make_cache() for _ in range(2)]
            padded = 0
            for tokens, lengths in ragged_steps():
                sharded.forward_ragged(tokens, caches, lengths)
                padded += tokens.shape[0] * tokens.shape[1]
            measured = sharded.comm_stats()
            projected = sharded.comm_projection()
        finally:
            sharded.close()
        assert sharded.padded_tokens == padded
        assert sharded.forward_calls == len(ragged_steps())
        assert measured.snapshot()["payload_bytes"] == projected.payload_bytes
        assert measured.wire_bytes == projected.wire_bytes
        assert measured.calls == projected.calls

    def test_decomposition_does_not_change_traffic(self):
        """Factorized projections change the GEMMs, not the gathered
        activations: dense and decomposed variants move identical bytes."""
        from repro.decomposition import DecompositionConfig

        dense = build_tiny()
        decomposed = build_tiny(
            decomposition=DecompositionConfig.all_tensors(TINY, layers=(0, 1), rank=2)
        )
        tokens = prompt_batch(2, 6)
        ledgers = []
        for model in (dense, decomposed):
            sharded = ShardedLlama(model, 2)
            try:
                sharded.forward(tokens)
                snapshot = sharded.comm_stats().snapshot()
            finally:
                sharded.close()
            snapshot.pop("elapsed_s")
            for channel in snapshot["channels"].values():
                channel.pop("elapsed_s")
            ledgers.append(snapshot)
        assert ledgers[0] == ledgers[1]
