"""Mesh arithmetic and weight-shard reconstruction."""

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.nn import FactorizedLinear
from repro.nn.linear import block_edges
from repro.parallel import DeviceMesh, shard_model, validate_mesh
from repro.parallel.mesh import Span

from tests.parallel.conftest import TINY, build_tiny


class TestDeviceMesh:
    def test_world_size_must_be_positive(self):
        with pytest.raises(ParallelError):
            DeviceMesh(0)

    def test_block_spans_cover_contiguously(self):
        spans = DeviceMesh(3).block_spans(7)
        assert spans[0][0] == 0 and spans[-1][1] == 7
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in spans]
        assert max(sizes) - min(sizes) <= 1  # loads differ by at most one

    def test_block_spans_match_block_edges_split(self):
        assert DeviceMesh(4).block_spans(4) == block_edges(4, 4)

    def test_too_few_blocks_rejected(self):
        with pytest.raises(ParallelError):
            DeviceMesh(5).block_spans(4)

    def test_head_span_indexes_rank(self):
        mesh = DeviceMesh(2)
        assert mesh.head_span(4, 0) == (0, 2)
        assert mesh.head_span(4, 1) == (2, 4)

    @pytest.mark.parametrize(
        "q_span,group,expected",
        [
            ((0, 2), 2, (0, 1)),   # aligned: exactly one kv head
            ((1, 3), 2, (0, 2)),   # straddles a group boundary: covers two
            ((0, 4), 1, (0, 4)),   # MHA: identity
            ((3, 4), 2, (1, 2)),
        ],
    )
    def test_kv_cover(self, q_span: Span, group: int, expected: Span):
        assert DeviceMesh.kv_cover(q_span, group) == expected

    def test_validate_mesh_accepts_tiny_at_4(self):
        validate_mesh(TINY, DeviceMesh(4))

    def test_validate_mesh_rejects_oversharding(self):
        with pytest.raises(ParallelError, match="tp"):
            validate_mesh(TINY, DeviceMesh(TINY.n_heads + 1))


class TestShardModel:
    @pytest.fixture(scope="class")
    def model(self):
        return build_tiny()

    @pytest.mark.parametrize("world_size", [1, 2, 4])
    def test_chunks_reassemble_dense_weights(self, model, world_size):
        shards = shard_model(model, DeviceMesh(world_size))
        block = model.blocks[0]
        for role, module in (("w_so", block.attn.w_so), ("w_d", block.mlp.w_d)):
            rebuilt = np.concatenate(
                [getattr(shard.layers[0], role).weight for shard in shards], axis=1
            )
            np.testing.assert_array_equal(rebuilt, module.weight.data)

    def test_q_heads_partition_and_kv_heads_cover(self, model):
        shards = shard_model(model, DeviceMesh(4))
        assert [shard.q_span for shard in shards] == [(0, 1), (1, 2), (2, 3), (3, 4)]
        # 4 q heads over 2 kv heads: adjacent ranks replicate their kv head.
        assert [shard.kv_span for shard in shards] == [(0, 1), (0, 1), (1, 2), (1, 2)]
        assert sum(shard.n_kv_heads for shard in shards) == 4  # 2x replication
        np.testing.assert_array_equal(
            shards[0].layers[0].w_k.weight, shards[1].layers[0].w_k.weight
        )

    def test_vocab_edges_stay_global(self, model):
        shards = shard_model(model, DeviceMesh(2))
        # vocab 97 over a 4-block grid splits unevenly (25/24/24/24); rank
        # edges must be the canonical global block boundaries, and the
        # per-rank [lo, hi) ranges must tile the vocabulary.
        assert shards[0].vocab_lo == 0 and shards[-1].vocab_hi == TINY.vocab_size
        for shard in shards:
            assert shard.vocab_edges[0][0] == shard.vocab_lo
            assert shard.vocab_edges[-1][1] == shard.vocab_hi
        assert shards[0].vocab_hi == shards[1].vocab_lo

    def test_factorized_projection_replicates_prefix(self):
        from repro.decomposition import DecompositionConfig

        model = build_tiny(
            decomposition=DecompositionConfig.uniform(
                layers=(0,), roles=("w_q",), rank=4
            )
        )
        module = model.blocks[0].attn.w_q
        assert isinstance(module, FactorizedLinear)
        shards = shard_model(model, DeviceMesh(2))
        widths = 0
        for shard in shards:
            proj = shard.layers[0].w_q
            assert proj.factorized
            np.testing.assert_array_equal(proj.u1, module.u1.data)
            np.testing.assert_array_equal(proj.core, module.core.data)
            widths += proj.out_width
        assert widths == module.u2.data.shape[1]  # only U2 columns shard

    def test_tied_head_keeps_full_embedding(self):
        model = build_tiny(tie_lm_head=True)
        assert model.lm_head is None
        for shard in shard_model(model, DeviceMesh(2)):
            assert shard.lm_head is None
            assert shard.embed.shape == (TINY.vocab_size, TINY.dim)

    def test_sharding_leaves_model_untouched(self, model):
        before = model.blocks[0].attn.w_q.weight.data.copy()
        shards = shard_model(model, DeviceMesh(2))
        shards[0].layers[0].w_q.weight[:] = -1.0
        np.testing.assert_array_equal(model.blocks[0].attn.w_q.weight.data, before)

    def test_shards_are_picklable(self, model):
        import pickle

        shards = shard_model(model, DeviceMesh(2))
        restored = pickle.loads(pickle.dumps(shards[1]))
        assert restored.rank == 1
        np.testing.assert_array_equal(
            restored.layers[0].w_q.weight, shards[1].layers[0].w_q.weight
        )
