"""Spawned-process backend: same numerics across real process boundaries.

These tests pay a real spawn cost (each child imports numpy), so the
world-size-2 backend is built once per module and exercised end to end.
"""

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.parallel import ProcessShardedLlama, analytic_comm

from tests.parallel.conftest import (
    TINY,
    assert_valid_rows_equal,
    build_tiny,
    prompt_batch,
    ragged_steps,
    run_canonical_ragged,
)


@pytest.fixture(scope="module")
def model():
    return build_tiny()


@pytest.fixture(scope="module")
def backend(model):
    sharded = ProcessShardedLlama(model, 2)
    yield sharded
    sharded.close()


class TestProcessBackend:
    def test_plain_forward_bitwise(self, model, backend):
        tokens = prompt_batch(2, 9)
        expected = model.forward(tokens).data
        got = backend.forward(tokens).data
        # ISSUE acceptance: allclose with rtol=0 — i.e. exact — across the
        # shared-memory round trip.
        assert np.allclose(got, expected, rtol=0.0, atol=0.0)
        np.testing.assert_array_equal(got, expected)

    def test_ragged_prefill_and_decode(self, model, backend):
        references = run_canonical_ragged(model)
        caches = [backend.make_cache() for _ in range(2)]
        for (tokens, lengths), expected in zip(ragged_steps(), references):
            got = backend.forward_ragged(tokens, caches, lengths).data
            assert_valid_rows_equal(got, expected, lengths)
        assert caches[0].seq_len == 7  # 5 prefill + 2 decode steps
        assert caches[1].seq_len == 5  # 3 prefill + 2 decode steps
        for cache in caches:
            cache.free()

    def test_p2p_ring_round_trip(self, backend):
        """Shared-memory send/recv between worker processes: one ring pass
        delivers each rank its left neighbor's payload exactly, and the
        traffic lands on the ledger's dedicated p2p channel."""
        before = backend.comm_stats().channel("p2p")
        base = np.arange(6, dtype=np.float32).reshape(2, 3)
        received = backend.p2p_ring(base)
        assert len(received) == 2
        for rank, payload in enumerate(received):
            np.testing.assert_array_equal(
                payload, base + (rank - 1) % 2
            )
        # comm_stats is rank 0's ledger: one send per ring pass.
        after = backend.comm_stats().channel("p2p")
        assert after["calls"] - before["calls"] == 1
        assert after["payload_bytes"] - before["payload_bytes"] == base.nbytes

    def test_stats_match_analytic_projection(self, backend):
        """Worker-measured traffic, shipped back over the pipe, still equals
        the analytic projection byte for byte."""
        stats_before = backend.comm_stats()
        tokens = prompt_batch(1, 4, seed=23)
        backend.forward(tokens)
        stats_after = backend.comm_stats()
        delta = analytic_comm(TINY, padded_tokens=4, world_size=2, forward_calls=1)
        assert stats_after.calls - stats_before.calls == delta.calls
        assert stats_after.payload_bytes - stats_before.payload_bytes == delta.payload_bytes
        assert stats_after.wire_bytes - stats_before.wire_bytes == delta.wire_bytes


class TestLifecycle:
    def test_close_is_idempotent_and_final(self, model):
        with ProcessShardedLlama(model, 2) as sharded:
            tokens = prompt_batch(1, 3, seed=29)
            expected = model.forward(tokens).data
            np.testing.assert_array_equal(sharded.forward(tokens).data, expected)
        sharded.close()  # second close is a no-op
        with pytest.raises(ParallelError, match="closed"):
            sharded.forward(tokens)
