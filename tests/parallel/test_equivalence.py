"""The exact-equality sweep: world sizes x variants x execution paths.

The contract under test (ISSUE acceptance): sharded execution is not
approximately right — ``ShardedLlama(model, P)`` reproduces the canonical
model's logits *bit for bit* for every world size, for dense and
decomposed weights, with and without KV caches.
"""

import numpy as np
import pytest

from repro.parallel import ShardedLlama

from tests.parallel.conftest import (
    VARIANT_BUILDERS,
    WORLD_SIZES,
    assert_valid_rows_equal,
    prompt_batch,
    ragged_steps,
    run_canonical_ragged,
)

VARIANTS = sorted(VARIANT_BUILDERS)


@pytest.mark.parametrize("world_size", WORLD_SIZES)
@pytest.mark.parametrize("variant", VARIANTS)
class TestExactEquality:
    def test_plain_forward(self, variant_models, variant, world_size):
        model = variant_models[variant]
        tokens = prompt_batch(2, 9)
        expected = model.forward(tokens).data
        sharded = ShardedLlama(model, world_size)
        try:
            got = sharded.forward(tokens).data
        finally:
            sharded.close()
        np.testing.assert_array_equal(got, expected)

    def test_ragged_prefill_and_decode(self, variant_models, variant, world_size):
        model = variant_models[variant]
        references = run_canonical_ragged(model)
        sharded = ShardedLlama(model, world_size)
        try:
            caches = [sharded.make_cache() for _ in range(2)]
            for (tokens, lengths), expected in zip(ragged_steps(), references):
                got = sharded.forward_ragged(tokens, caches, lengths).data
                assert_valid_rows_equal(got, expected, lengths)
        finally:
            sharded.close()


@pytest.mark.parametrize("variant", VARIANTS)
def test_world_sizes_agree_with_each_other(variant_models, variant):
    """Transitivity check on the fixed reduction order: every world size
    produces the same bytes, not merely bytes close to the canonical."""
    model = variant_models[variant]
    tokens = prompt_batch(1, 6, seed=11)
    outputs = []
    for world_size in WORLD_SIZES:
        sharded = ShardedLlama(model, world_size)
        try:
            outputs.append(sharded.forward(tokens).data)
        finally:
            sharded.close()
    for other in outputs[1:]:
        np.testing.assert_array_equal(outputs[0], other)


def test_single_position_decode_matches_full_context(variant_models):
    """Cached one-token decode at world size 2 equals the canonical cached
    decode — the shape regime where BLAS layout sensitivity once bit."""
    from repro.nn.kv_cache import ModelKVCache

    model = variant_models["partial-rank4"]
    prompt = prompt_batch(1, 5, seed=13)
    step = prompt_batch(1, 1, seed=17)

    cache = ModelKVCache(model.config.n_layers)
    model.forward_ragged(prompt, [cache], np.array([5]))
    expected = model.forward_ragged(step, [cache], np.array([1])).data

    sharded = ShardedLlama(model, 2)
    try:
        shard_cache = sharded.make_cache()
        sharded.forward_ragged(prompt, [shard_cache], np.array([5]))
        got = sharded.forward_ragged(step, [shard_cache], np.array([1])).data
    finally:
        sharded.close()
    np.testing.assert_array_equal(got, expected)
