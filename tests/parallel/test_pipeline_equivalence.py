"""2-D grid exact equality: every (pp, tp) cell reproduces canonical bytes.

The tentpole contract: pipeline stages compose with tensor shards without
touching the numerics.  ``ShardedLlama(model, tp, pp=pp)`` must equal the
single-process model *bit for bit* at every grid shape, for every variant,
on every execution surface (plain forward, ragged prefill/decode, cached
decode) — and the grid's P2P ledger must match its analytic projection
byte for byte alongside the all-gather ledger.
"""

import numpy as np
import pytest

from repro.parallel import ShardedLlama

from tests.parallel.conftest import (
    VARIANT_BUILDERS,
    assert_valid_rows_equal,
    prompt_batch,
    ragged_steps,
    run_canonical_ragged,
)

VARIANTS = sorted(VARIANT_BUILDERS)
GRID = [(1, 1), (1, 2), (2, 1), (2, 2)]  # (pp, tp) cells of the ISSUE matrix


@pytest.mark.parametrize("pp,tp", GRID, ids=[f"pp{p}tp{t}" for p, t in GRID])
@pytest.mark.parametrize("variant", VARIANTS)
class TestGridEquality:
    def test_plain_forward(self, variant_models, variant, pp, tp):
        model = variant_models[variant]
        tokens = prompt_batch(3, 7)
        expected = model.forward(tokens).data
        sharded = ShardedLlama(model, tp, pp=pp)
        try:
            got = sharded.forward(tokens).data
        finally:
            sharded.close()
        np.testing.assert_array_equal(got, expected)

    def test_ragged_prefill_and_decode(self, variant_models, variant, pp, tp):
        model = variant_models[variant]
        references = run_canonical_ragged(model)
        sharded = ShardedLlama(model, tp, pp=pp)
        try:
            caches = [sharded.make_cache() for _ in range(2)]
            for (tokens, lengths), expected in zip(ragged_steps(), references):
                got = sharded.forward_ragged(tokens, caches, lengths).data
                assert_valid_rows_equal(got, expected, lengths)
        finally:
            sharded.close()

    def test_cached_decode(self, variant_models, variant, pp, tp):
        """Prefill then two single-token decode steps against the canonical
        cached path — the surface greedy generation drives."""
        from repro.nn.kv_cache import ModelKVCache

        model = variant_models[variant]
        prompt = prompt_batch(2, 5, seed=19)
        steps = [prompt_batch(2, 1, seed=s) for s in (23, 29)]

        cache = ModelKVCache(model.config.n_layers)
        model.forward_cached(prompt, cache)
        expected = [model.forward_cached(step, cache).data for step in steps]

        sharded = ShardedLlama(model, tp, pp=pp)
        try:
            shard_cache = sharded.make_cache()
            sharded.forward_cached(prompt, shard_cache)
            got = [sharded.forward_cached(step, shard_cache).data for step in steps]
        finally:
            sharded.close()
        for g, e in zip(got, expected):
            np.testing.assert_array_equal(g, e)


class TestGridLedger:
    def test_p2p_ledger_matches_projection(self, variant_models):
        """Measured P2P traffic on a 2x2 grid equals the analytic projection
        byte for byte, and the all-gather channel stays exact too."""
        model = variant_models["dense"]
        sharded = ShardedLlama(model, 2, pp=2)
        try:
            sharded.forward(prompt_batch(2, 6, seed=31))
            caches = [sharded.make_cache() for _ in range(2)]
            for tokens, lengths in ragged_steps():
                sharded.forward_ragged(tokens, caches, lengths)
            stats = sharded.comm_stats()
            for name, projection in sharded.comm_projections().items():
                measured = stats.channel(name)
                assert measured["calls"] == projection.calls, name
                assert measured["payload_bytes"] == projection.payload_bytes, name
                assert measured["wire_bytes"] == projection.wire_bytes, name
        finally:
            sharded.close()

    def test_single_stage_pipe_has_no_p2p(self, variant_models):
        model = variant_models["dense"]
        sharded = ShardedLlama(model, 2, pp=1)
        try:
            sharded.forward(prompt_batch(1, 4, seed=37))
            assert sharded.comm_stats().channel("p2p")["calls"] == 0
            assert sharded.p2p_projection().calls == 0
        finally:
            sharded.close()


def test_returned_logits_survive_the_next_forward(variant_models):
    """Regression: a size-1 gather used to return the sharded fast path's
    reused workspace buffer, so logits held across decode steps were
    silently clobbered by the next call."""
    model = variant_models["all-tensors-rank2"]
    sharded = ShardedLlama(model, 1, pp=1)
    try:
        cache = sharded.make_cache()
        sharded.forward_cached(prompt_batch(2, 5, seed=19), cache)
        first = sharded.forward_cached(prompt_batch(2, 1, seed=23), cache)
        snapshot = first.data.copy()
        sharded.forward_cached(prompt_batch(2, 1, seed=29), cache)
        np.testing.assert_array_equal(first.data, snapshot)
    finally:
        sharded.close()


class TestGridOverrides:
    def test_cut_points_override_stays_exact(self, variant_models):
        """An explicitly imbalanced cut (all layers but one in stage 0)
        changes the schedule, never the bytes."""
        model = variant_models["partial-rank4"]
        tokens = prompt_batch(2, 8, seed=41)
        expected = model.forward(tokens).data
        sharded = ShardedLlama(model, 1, pp=2, cut_points=(1,))
        try:
            np.testing.assert_array_equal(sharded.forward(tokens).data, expected)
        finally:
            sharded.close()

    def test_microbatch_override_stays_exact(self, variant_models):
        """Forcing more microbatches than the default min(pp, rows) keeps
        ragged outputs exact (pad_to pins the reduction width)."""
        model = variant_models["dense"]
        references = run_canonical_ragged(model)
        sharded = ShardedLlama(model, 1, pp=2, microbatches=2)
        try:
            caches = [sharded.make_cache() for _ in range(2)]
            for (tokens, lengths), expected in zip(ragged_steps(), references):
                got = sharded.forward_ragged(tokens, caches, lengths).data
                assert_valid_rows_equal(got, expected, lengths)
        finally:
            sharded.close()
