"""Grid-shape validation on the 2-D mesh: the pipeline axis and its cuts.

Companion to test_mesh_sharding.py (which covers the tensor axis): stage
spans must tile the layer range exactly once under both the balance
heuristic and explicit ``cut_points``, and every ill-formed grid —
``pp > n_layers``, ``pp * tp != world_size``, bad cuts — must be rejected
with a clear error before any weights are sliced.
"""

import itertools

import pytest

from repro.errors import ParallelError
from repro.parallel import DeviceMesh, validate_mesh

from tests.parallel.conftest import TINY


def assert_tiles_exactly_once(spans, n_layers):
    """Every layer in [0, n_layers) appears in exactly one span."""
    owners = [0] * n_layers
    for lo, hi in spans:
        assert 0 <= lo < hi <= n_layers, spans
        for layer in range(lo, hi):
            owners[layer] += 1
    assert owners == [1] * n_layers, spans


class TestStageSpans:
    def test_more_stages_than_layers_rejected(self):
        with pytest.raises(ParallelError, match="pipeline stages"):
            DeviceMesh(tp=1, pp=3).stage_spans(2)

    def test_validate_mesh_rejects_pp_over_n_layers(self):
        # TINY has 2 decoder layers; a 3-stage pipe leaves a stage empty.
        with pytest.raises(ParallelError, match="pp 3"):
            validate_mesh(TINY, DeviceMesh(tp=1, pp=3))

    def test_validate_mesh_rejects_world_size_mismatch(self):
        with pytest.raises(ParallelError, match="world_size"):
            validate_mesh(TINY, DeviceMesh(tp=2, pp=2), world_size=3)

    @pytest.mark.parametrize("n_layers,pp", [(7, 2), (7, 3), (5, 4), (9, 4)])
    def test_non_divisible_layer_counts_balance(self, n_layers, pp):
        """The heuristic split tiles exactly once with stage loads differing
        by at most one layer."""
        spans = DeviceMesh(tp=1, pp=pp).stage_spans(n_layers)
        assert_tiles_exactly_once(spans, n_layers)
        sizes = [hi - lo for lo, hi in spans]
        assert max(sizes) - min(sizes) <= 1

    def test_cut_points_tile_exactly_once(self):
        """Property sweep: every strictly increasing interior cut set yields
        spans that tile the layer range exactly once."""
        for n_layers in (4, 6, 8):
            for pp in (2, 3, 4):
                for cuts in itertools.combinations(range(1, n_layers), pp - 1):
                    spans = DeviceMesh(tp=1, pp=pp).stage_spans(
                        n_layers, cut_points=cuts
                    )
                    assert_tiles_exactly_once(spans, n_layers)
                    assert spans[0][0] == 0 and spans[-1][1] == n_layers

    @pytest.mark.parametrize(
        "cuts",
        [
            (),            # too few boundaries for pp=2
            (1, 3),        # too many
            (0,),          # boundary at the range edge -> empty stage 0
            (6,),          # boundary at the other edge -> empty last stage
            (9,),          # out of range entirely
        ],
    )
    def test_malformed_cut_points_rejected(self, cuts):
        with pytest.raises(ParallelError, match="cut_points"):
            DeviceMesh(tp=1, pp=2).stage_spans(6, cut_points=cuts)

    def test_non_increasing_cut_points_rejected(self):
        with pytest.raises(ParallelError, match="strictly increasing"):
            DeviceMesh(tp=1, pp=3).stage_spans(6, cut_points=(4, 2))


class TestRankNumbering:
    def test_stage_major_round_trip(self):
        mesh = DeviceMesh(tp=3, pp=2)
        assert mesh.world_size == 6
        flat = 0
        for stage in range(mesh.pp):
            for tp_rank in range(mesh.tp):
                assert mesh.rank_of(stage, tp_rank) == flat
                assert mesh.coords_of(flat) == (stage, tp_rank)
                flat += 1

    def test_out_of_range_cells_rejected(self):
        mesh = DeviceMesh(tp=2, pp=2)
        with pytest.raises(ParallelError, match="stage"):
            mesh.rank_of(2, 0)
        with pytest.raises(ParallelError, match="tp_rank"):
            mesh.rank_of(0, 2)
        with pytest.raises(ParallelError, match="rank 4"):
            mesh.coords_of(4)

    @pytest.mark.parametrize("tp,pp", [(0, 1), (1, 0), (-2, 1)])
    def test_degenerate_grids_rejected(self, tp, pp):
        with pytest.raises(ParallelError, match="positive"):
            DeviceMesh(tp=tp, pp=pp)
