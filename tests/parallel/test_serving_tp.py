"""Tensor-parallel execution under the continuous-batching engine."""

import numpy as np
import pytest

from repro.parallel import ShardedLlama
from repro.parallel.local import ShardedKVPool
from repro.parallel.sharding import shard_model
from repro.parallel.mesh import DeviceMesh
from repro.serving import EngineConfig, InferenceEngine, poisson_trace, replay_trace
from repro.serving.bench import run_serve_bench
from repro.serving.pool import KVBlockPool

from tests.parallel.conftest import TINY, build_tiny


@pytest.fixture(scope="module")
def model():
    return build_tiny()


ENGINE_CONFIG = dict(max_batch=4, token_budget=32, n_blocks=32, block_tokens=8)


def small_trace(n=6):
    return poisson_trace(
        n,
        rate_rps=50.0,
        vocab_size=TINY.vocab_size,
        prompt_len=(4, 10),
        new_tokens=(2, 6),
        seed=0,
    )


class TestEngineIntegration:
    @pytest.mark.parametrize("world_size", [2, 4])
    def test_engine_tokens_identical_to_canonical(self, model, world_size):
        trace = small_trace()
        reference = InferenceEngine(model, EngineConfig(**ENGINE_CONFIG))
        expected = replay_trace(reference, trace)

        sharded = ShardedLlama(model, world_size)
        try:
            engine = InferenceEngine(sharded, EngineConfig(**ENGINE_CONFIG))
            got = replay_trace(engine, trace)
            for want, have in zip(expected, got):
                assert have.state is want.state
                np.testing.assert_array_equal(have.tokens, want.tokens)
            measured = sharded.comm_stats()
            projected = sharded.comm_projection()
            assert measured.payload_bytes == projected.payload_bytes
            assert measured.wire_bytes == projected.wire_bytes
            assert measured.calls == projected.calls
        finally:
            sharded.close()

    def test_engine_uses_sharded_pool(self, model):
        sharded = ShardedLlama(model, 2)
        try:
            engine = InferenceEngine(sharded, EngineConfig(**ENGINE_CONFIG))
            assert isinstance(engine.pool, ShardedKVPool)
            assert len(engine.pool.pools) == 2
        finally:
            sharded.close()


class TestShardedKVPool:
    def test_per_rank_pools_hold_covering_heads_only(self, model):
        shards = shard_model(model, DeviceMesh(2))
        pool = ShardedKVPool(shards, n_blocks=16, block_tokens=8)
        full = KVBlockPool(TINY, n_blocks=16, block_tokens=8)
        # 2 kv heads over 2 ranks: one head each, so the sharded total
        # equals the canonical pool's bytes (no GQA-cover overlap here).
        assert pool.bytes_allocated == full.bytes_allocated
        for rank_pool, shard in zip(pool.pools, shards):
            assert rank_pool.bytes_allocated == full.bytes_allocated // 2
            assert shard.n_kv_heads == 1

    def test_gqa_cover_replication_costs_memory(self, model):
        # At world size 4 each rank covers one kv head, so the 2 kv heads
        # are stored twice across the group.
        shards = shard_model(model, DeviceMesh(4))
        pool = ShardedKVPool(shards, n_blocks=16, block_tokens=8)
        full = KVBlockPool(TINY, n_blocks=16, block_tokens=8)
        assert pool.bytes_allocated == 2 * full.bytes_allocated

    def test_reservations_stay_symmetric(self, model):
        shards = shard_model(model, DeviceMesh(2))
        pool = ShardedKVPool(shards, n_blocks=4, block_tokens=8)
        cache = pool.allocate_sequence()
        cache.reserve(10)  # 2 blocks on every rank
        assert cache.seq_len == 0
        assert pool.used_blocks == 2
        for rank_pool in pool.pools:
            assert rank_pool.used_blocks == 2
        cache.free()
        assert pool.used_blocks == 0
        assert pool.available_blocks == 4


class TestServeBenchTP:
    def test_report_carries_exact_comm_verdict(self, model):
        report = run_serve_bench(
            model,
            ["dense"],
            small_trace(4),
            engine_config=EngineConfig(**ENGINE_CONFIG),
            tp=2,
            seed=0,
        )
        result = report.result_for("dense")
        assert result.tp == 2
        assert result.comm is not None
        assert result.comm["bytes_match"] is True
        assert "[exact]" in report.table()
        payload = report.to_dict()
        assert payload["tp"] == 2 and payload["seed"] == 0
        assert payload["results"][0]["comm"]["bytes_match"] is True

    def test_tp_one_has_no_comm_section(self, model):
        report = run_serve_bench(
            model,
            ["dense"],
            small_trace(3),
            engine_config=EngineConfig(**ENGINE_CONFIG),
            tp=1,
        )
        result = report.result_for("dense")
        assert result.comm is None
        assert result.comm_line() is None

    def test_tp_must_be_positive(self, model):
        from repro.errors import ServingError

        with pytest.raises(ServingError):
            run_serve_bench(model, ["dense"], small_trace(2), tp=0)


class TestServeBench2D:
    def test_grid_engine_tokens_identical_to_canonical(self, model):
        trace = small_trace()
        reference = InferenceEngine(model, EngineConfig(**ENGINE_CONFIG))
        expected = replay_trace(reference, trace)
        sharded = ShardedLlama(model, 2, pp=2)
        try:
            engine = InferenceEngine(sharded, EngineConfig(**ENGINE_CONFIG))
            got = replay_trace(engine, trace)
            for want, have in zip(expected, got):
                assert have.state is want.state
                np.testing.assert_array_equal(have.tokens, want.tokens)
        finally:
            sharded.close()

    def test_report_carries_both_channel_verdicts(self, model):
        report = run_serve_bench(
            model,
            ["dense"],
            small_trace(4),
            engine_config=EngineConfig(**ENGINE_CONFIG),
            tp=2,
            pp=2,
            seed=0,
        )
        result = report.result_for("dense")
        assert result.tp == 2 and result.pp == 2
        assert result.comm["bytes_match"] is True
        channels = result.comm["channels"]
        assert set(channels) == {"all_gather", "p2p"}
        for name, cell in channels.items():
            assert cell["bytes_match"] is True, name
            assert cell["measured"]["calls"] > 0, name
        line = result.comm_line()
        assert "all_gather" in line and "p2p" in line
        assert "[MISMATCH]" not in line
        assert "pp=2" in report.table()

    def test_pipeline_only_grid_stays_exact(self, model):
        """tp=1, pp=2: size-1 gathers record calls but move zero wire
        bytes, and the live p2p channel matches its projection exactly."""
        report = run_serve_bench(
            model,
            ["dense"],
            small_trace(3),
            engine_config=EngineConfig(**ENGINE_CONFIG),
            tp=1,
            pp=2,
        )
        result = report.result_for("dense")
        channels = result.comm["channels"]
        assert channels["p2p"]["bytes_match"] is True
        assert channels["p2p"]["measured"]["wire_bytes"] > 0
        assert channels["all_gather"]["bytes_match"] is True
        assert channels["all_gather"]["measured"]["wire_bytes"] == 0
        assert "p2p" in result.comm_line()

    def test_pp_must_be_positive(self, model):
        from repro.errors import ServingError

        with pytest.raises(ServingError):
            run_serve_bench(model, ["dense"], small_trace(2), pp=0)
