"""Collective semantics: fixed reduction order, stats ledger, aborts."""

import threading

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.parallel.collectives import (
    CommStats,
    LocalGroup,
    fixed_order_sum,
    gather_wire_bytes,
    reduce_wire_bytes,
)


def run_ranks(group, fn):
    """Run ``fn(rank)`` on one thread per rank; return results in rank order
    or raise the first failure."""
    results = [None] * group.world_size
    errors = []

    def target(rank):
        try:
            results[rank] = fn(rank)
        except BaseException as exc:  # noqa: BLE001 - collected for assertion
            errors.append(exc)
            group.abort()

    threads = [
        threading.Thread(target=target, args=(rank,))
        for rank in range(group.world_size)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


class TestHelpers:
    def test_fixed_order_sum_is_left_to_right(self):
        # Floating point addition is not associative: the fixed order must
        # match a plain left-to-right loop, not a pairwise tree.
        parts = [np.array([1e8], dtype=np.float32),
                 np.array([-1e8], dtype=np.float32),
                 np.array([1.0], dtype=np.float32),
                 np.array([0.25], dtype=np.float32)]
        expected = ((parts[0] + parts[1]) + parts[2]) + parts[3]
        np.testing.assert_array_equal(fixed_order_sum(parts), expected)

    def test_fixed_order_sum_does_not_mutate_inputs(self):
        parts = [np.ones(3, dtype=np.float32), np.ones(3, dtype=np.float32)]
        fixed_order_sum(parts)
        np.testing.assert_array_equal(parts[0], np.ones(3, dtype=np.float32))

    def test_wire_byte_identities(self):
        assert gather_wire_bytes(1000, 4) == 3000
        assert gather_wire_bytes(1000, 1) == 0
        assert reduce_wire_bytes(1000, 4) == 6000

    def test_stats_record_and_snapshot(self):
        stats = CommStats()
        stats.record(100, 300, 0.5)
        stats.record(50, 150)
        assert stats.calls == 2
        assert stats.payload_bytes == 150
        assert stats.wire_bytes == 450
        snap = stats.snapshot()
        assert snap == {
            "calls": 2,
            "payload_bytes": 150,
            "wire_bytes": 450,
            "elapsed_s": 0.5,
            "channels": {
                "all_gather": {
                    "calls": 2,
                    "payload_bytes": 150,
                    "wire_bytes": 450,
                    "elapsed_s": 0.5,
                },
            },
        }
        # snapshot round-trips through the constructor (the process backend
        # ships stats across the pipe this way)
        assert CommStats(**snap).snapshot() == snap

    def test_stats_channels_split_by_primitive(self):
        stats = CommStats()
        stats.record(100, 300, channel="all_gather")
        stats.record(40, 40, channel="p2p")
        stats.record(40, 40, channel="p2p")
        # Totals sum over channels; each channel keeps its own ledger.
        assert stats.calls == 3
        assert stats.payload_bytes == 180
        assert stats.channel("all_gather")["wire_bytes"] == 300
        assert stats.channel("p2p") == {
            "calls": 2, "payload_bytes": 80, "wire_bytes": 80, "elapsed_s": 0.0,
        }
        # Never-fired channels read as zeros, not KeyError.
        assert stats.channel("all_reduce")["calls"] == 0
        snap = stats.snapshot()
        assert CommStats(**snap).snapshot() == snap

    def test_stats_loads_legacy_snapshot_without_channels(self):
        # Snapshots written before the per-channel breakdown lack the
        # "channels" key; they must still construct (empty breakdown).
        legacy = {"calls": 2, "payload_bytes": 150, "wire_bytes": 450,
                  "elapsed_s": 0.5}
        stats = CommStats(**legacy)
        assert stats.calls == 2
        assert stats.channels == {}
        assert stats.channel("all_gather")["calls"] == 0


class TestLocalGroup:
    def test_world_size_must_be_positive(self):
        with pytest.raises(ParallelError):
            LocalGroup(0)

    def test_all_gather_concatenates_in_rank_order(self):
        group = LocalGroup(3)
        # Uneven chunks: 1, 2, and 3 columns.
        chunks = [np.full((2, width), rank, dtype=np.float32)
                  for rank, width in enumerate((1, 2, 3))]
        results = run_ranks(group, lambda rank: group.all_gather(rank, chunks[rank]))
        expected = np.concatenate(chunks, axis=-1)
        for result in results:
            np.testing.assert_array_equal(result, expected)
        assert group.stats.calls == 1
        assert group.stats.payload_bytes == expected.nbytes
        assert group.stats.wire_bytes == 2 * expected.nbytes

    def test_all_reduce_uses_fixed_rank_order(self):
        group = LocalGroup(4)
        parts = [np.array([1e8], dtype=np.float32),
                 np.array([-1e8], dtype=np.float32),
                 np.array([1.0], dtype=np.float32),
                 np.array([0.25], dtype=np.float32)]
        results = run_ranks(group, lambda rank: group.all_reduce(rank, parts[rank]))
        expected = fixed_order_sum(parts)
        for result in results:
            np.testing.assert_array_equal(result, expected)
        assert group.stats.wire_bytes == 2 * 3 * expected.nbytes

    def test_broadcast_from_nonzero_root(self):
        group = LocalGroup(3)
        payload = np.arange(6, dtype=np.float32).reshape(2, 3)
        results = run_ranks(
            group,
            lambda rank: group.broadcast(
                rank, payload if rank == 2 else None, root=2
            ),
        )
        for result in results:
            np.testing.assert_array_equal(result, payload)

    def test_world_size_one_fast_paths(self):
        group = LocalGroup(1)
        array = np.ones((3, 4), dtype=np.float32)
        assert group.all_gather(0, array) is array
        assert group.all_reduce(0, array) is array
        assert group.broadcast(0, array) is array
        group.barrier(0)
        assert group.stats.calls == 3
        assert group.stats.wire_bytes == 0  # nothing crosses a link

    def test_world_size_one_broadcast_requires_array(self):
        with pytest.raises(ParallelError):
            LocalGroup(1).broadcast(0, None)

    def test_abort_releases_blocked_peers(self):
        group = LocalGroup(2)

        def worker(rank):
            if rank == 1:
                raise RuntimeError("rank 1 exploded")
            return group.all_gather(rank, np.ones(2, dtype=np.float32))

        # Rank 0 blocks in the collective until rank 1's failure aborts the
        # barrier; run_ranks re-raises the causal error, not a hang.
        with pytest.raises(RuntimeError, match="exploded"):
            run_ranks(group, worker)

    def test_reset_makes_group_usable_after_abort(self):
        group = LocalGroup(2)
        group.abort()
        group.reset()
        chunks = [np.full(2, rank, dtype=np.float32) for rank in range(2)]
        results = run_ranks(group, lambda rank: group.all_gather(rank, chunks[rank]))
        np.testing.assert_array_equal(results[0], np.array([0, 0, 1, 1], dtype=np.float32))
