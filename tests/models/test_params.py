"""Analytic parameter accounting must match live models and publications."""

import pytest

from repro.errors import ConfigError
from repro.models import LLAMA2_7B, get_config
from repro.models.params import (
    decomposable_parameters_per_layer,
    decomposed_parameters,
    embedding_parameters,
    layer_parameters,
    model_size_bytes,
    parameter_reduction,
    total_parameters,
)


class TestAnalyticCounts:
    def test_llama2_7b_total_close_to_published(self):
        total = total_parameters(LLAMA2_7B)
        assert abs(total - 6.74e9) / 6.74e9 < 0.01

    def test_bert_base_close_to_published(self):
        config = get_config("bert-base")
        # 110M encoder + ~24M MLM head
        assert abs(total_parameters(config) - 133.5e6) / 133.5e6 < 0.02

    def test_fp16_size(self):
        assert model_size_bytes(LLAMA2_7B) == 2 * total_parameters(LLAMA2_7B)

    def test_matches_live_llama(self, micro_llama, micro_llama_config):
        assert total_parameters(micro_llama_config) == micro_llama.num_parameters()

    def test_matches_live_bert(self, micro_bert, micro_bert_config):
        assert total_parameters(micro_bert_config) == micro_bert.num_parameters()

    def test_per_layer_role_counts(self):
        per_role = decomposable_parameters_per_layer(LLAMA2_7B)
        assert per_role["w_q"] == 4096 * 4096
        assert per_role["w_g"] == 4096 * 11008
        assert sum(per_role.values()) + 2 * 4096 == layer_parameters(LLAMA2_7B)

    def test_embedding_params(self):
        assert embedding_parameters(LLAMA2_7B) == 32000 * 4096


class TestDecomposedCounts:
    def test_rank1_one_layer(self):
        before = total_parameters(LLAMA2_7B)
        after = decomposed_parameters(LLAMA2_7B, [5], ["w_q"], 1)
        saved = before - after
        assert saved == 4096 * 4096 - (4096 + 1 + 4096)

    def test_full_rank_saves_nothing_like(self):
        """At rank = min dim, the factorized form is *larger* than dense."""
        after = decomposed_parameters(LLAMA2_7B, [5], ["w_q"], 4096)
        assert after > total_parameters(LLAMA2_7B)

    def test_reduction_fraction_bounds(self):
        reduction = parameter_reduction(
            LLAMA2_7B, range(32), LLAMA2_7B.tensor_roles, 1
        )
        assert 0.9 < reduction < 1.0

    def test_invalid_layer_rejected(self):
        with pytest.raises(ConfigError):
            decomposed_parameters(LLAMA2_7B, [40], ["w_q"], 1)

    def test_invalid_role_rejected(self):
        with pytest.raises(ConfigError):
            decomposed_parameters(LLAMA2_7B, [0], ["w_int"], 1)

    def test_duplicate_layers_counted_once(self):
        a = decomposed_parameters(LLAMA2_7B, [3, 3], ["w_q"], 1)
        b = decomposed_parameters(LLAMA2_7B, [3], ["w_q"], 1)
        assert a == b
