"""ModelConfig validation, tensor-role inventories, and the registry."""

import pytest

from repro.errors import ConfigError
from repro.models import (
    BERT_TENSOR_ROLES,
    LLAMA2_7B,
    LLAMA2_70B,
    LLAMA_TENSOR_ROLES,
    ModelConfig,
    available_models,
    get_config,
)


class TestModelConfig:
    def test_llama_has_seven_roles(self):
        assert LLAMA2_7B.tensor_roles == LLAMA_TENSOR_ROLES
        assert LLAMA2_7B.n_tensors == 7

    def test_bert_has_six_roles(self):
        config = get_config("bert-base")
        assert config.tensor_roles == BERT_TENSOR_ROLES
        assert config.n_tensors == 6

    def test_llama_tensor_shapes(self):
        assert LLAMA2_7B.tensor_shape("w_q") == (4096, 4096)
        assert LLAMA2_7B.tensor_shape("w_g") == (4096, 11008)
        assert LLAMA2_7B.tensor_shape("w_d") == (11008, 4096)

    def test_gqa_kv_shapes(self):
        # Llama-2-70B uses 8 KV heads of head_dim 128 -> kv_dim 1024.
        assert LLAMA2_70B.kv_dim == 1024
        assert LLAMA2_70B.tensor_shape("w_k") == (8192, 1024)
        assert LLAMA2_70B.tensor_shape("w_q") == (8192, 8192)

    def test_bert_tensor_shapes(self):
        config = get_config("bert-base")
        assert config.tensor_shape("w_int") == (768, 3072)
        assert config.tensor_shape("w_out") == (3072, 768)

    def test_unknown_role_rejected(self):
        with pytest.raises(ConfigError):
            LLAMA2_7B.tensor_shape("w_int")

    def test_invalid_family_rejected(self):
        with pytest.raises(ConfigError):
            ModelConfig(
                name="x", family="gpt", vocab_size=10, dim=8,
                n_layers=1, n_heads=2, mlp_hidden=16, max_seq_len=8,
            )

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ConfigError):
            ModelConfig(
                name="x", family="llama", vocab_size=10, dim=10,
                n_layers=1, n_heads=3, mlp_hidden=16, max_seq_len=8,
            )

    def test_with_vocab(self):
        rebound = LLAMA2_7B.with_vocab(100)
        assert rebound.vocab_size == 100
        assert rebound.dim == LLAMA2_7B.dim

    def test_head_dim(self):
        assert LLAMA2_7B.head_dim == 128


class TestRegistry:
    def test_paper_scale_models_present(self):
        names = available_models()
        for expected in ("llama2-7b", "llama2-70b", "bert-base", "bert-large", "tiny-llama"):
            assert expected in names

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            get_config("gpt-5")

    def test_serve_llama_registered_with_gqa(self):
        config = get_config("serve-llama")
        assert config.family == "llama"
        assert config.dim == 384
        assert config.kv_heads < config.n_heads  # grouped-query attention
        assert config.head_dim * config.n_heads == config.dim

    def test_published_hyperparameters(self):
        assert LLAMA2_7B.n_layers == 32
        assert LLAMA2_7B.dim == 4096
        assert LLAMA2_70B.n_layers == 80
        assert get_config("bert-base").n_layers == 12
        assert get_config("bert-large").n_layers == 24
