"""Cached greedy decoding must be a pure optimization.

``greedy_generate(use_cache=True)`` and the recompute reference path must
produce identical tokens — including when the KV cache hits the context
window mid-generation and the cached path falls back to windowed
recomputation — and batched ragged forwards must match the per-sequence
cached forward exactly.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import ModelKVCache


@pytest.fixture(scope="module")
def short_context_model(micro_llama_config):
    """Context window small enough that generation overflows it quickly."""
    config = replace(micro_llama_config, max_seq_len=12, name="short-ctx-llama")
    model = build_model(config, rng=np.random.default_rng(9))
    model.eval()
    return model


class TestCacheVsRecompute:
    @pytest.mark.parametrize("prompt_len,new_tokens", [(1, 5), (4, 8), (10, 3)])
    def test_identical_tokens(self, micro_llama, prompt_len, new_tokens):
        micro_llama.eval()
        prompt = (np.arange(prompt_len) * 7 + 3) % micro_llama.config.vocab_size
        cached = micro_llama.greedy_generate(prompt, new_tokens, use_cache=True)
        recomputed = micro_llama.greedy_generate(prompt, new_tokens, use_cache=False)
        np.testing.assert_array_equal(cached, recomputed)

    def test_stop_token_identical(self, micro_llama):
        micro_llama.eval()
        prompt = np.array([2, 11, 5])
        reference = micro_llama.greedy_generate(prompt, 8, use_cache=False)
        stop = int(reference[len(prompt) + 1])
        cached = micro_llama.greedy_generate(prompt, 8, stop_token=stop, use_cache=True)
        recomputed = micro_llama.greedy_generate(
            prompt, 8, stop_token=stop, use_cache=False
        )
        np.testing.assert_array_equal(cached, recomputed)

    def test_overflow_falls_back_to_recompute(self, short_context_model):
        """Generation past max_seq_len takes the windowed-recompute branch."""
        config = short_context_model.config
        prompt = np.arange(8) % config.vocab_size
        new_tokens = 10  # 8 + 10 > max_seq_len=12: cache fills mid-decode
        cached = short_context_model.greedy_generate(prompt, new_tokens, use_cache=True)
        recomputed = short_context_model.greedy_generate(
            prompt, new_tokens, use_cache=False
        )
        assert cached.size == prompt.size + new_tokens
        np.testing.assert_array_equal(cached, recomputed)

    def test_overflow_with_prompt_at_window(self, short_context_model):
        config = short_context_model.config
        prompt = np.arange(config.max_seq_len) % config.vocab_size
        cached = short_context_model.greedy_generate(prompt, 4, use_cache=True)
        recomputed = short_context_model.greedy_generate(prompt, 4, use_cache=False)
        np.testing.assert_array_equal(cached, recomputed)


class TestForwardRagged:
    def test_matches_per_sequence_cached_forward(self, micro_llama):
        micro_llama.eval()
        config = micro_llama.config
        rng = np.random.default_rng(3)
        prompts = [
            rng.integers(0, config.vocab_size, size=length) for length in (7, 3, 12)
        ]
        # Reference: each sequence through its own contiguous cache.
        reference = []
        ref_caches = [ModelKVCache(config.n_layers) for _ in prompts]
        for prompt, cache in zip(prompts, ref_caches):
            logits = micro_llama._forward_with_cache(prompt.reshape(1, -1), cache)
            reference.append(logits.data[0])

        lengths = np.array([p.size for p in prompts])
        batch = np.zeros((len(prompts), lengths.max()), dtype=np.int64)
        for row, prompt in enumerate(prompts):
            batch[row, : prompt.size] = prompt
        caches = [ModelKVCache(config.n_layers) for _ in prompts]
        logits = micro_llama.forward_ragged(batch, caches, lengths)
        for row, prompt in enumerate(prompts):
            np.testing.assert_allclose(
                logits.data[row, : prompt.size], reference[row], atol=1e-5
            )

    def test_decode_step_at_mixed_depths(self, micro_llama):
        micro_llama.eval()
        config = micro_llama.config
        rng = np.random.default_rng(4)
        prompts = [rng.integers(0, config.vocab_size, size=n) for n in (5, 9)]
        ref_caches = [ModelKVCache(config.n_layers) for _ in prompts]
        caches = [ModelKVCache(config.n_layers) for _ in prompts]
        for prompt, ref_cache, cache in zip(prompts, ref_caches, caches):
            micro_llama._forward_with_cache(prompt.reshape(1, -1), ref_cache)
            micro_llama._forward_with_cache(prompt.reshape(1, -1), cache)
        next_tokens = np.array([[1], [2]])
        reference = [
            micro_llama._forward_with_cache(next_tokens[row : row + 1], ref_caches[row])
            for row in range(2)
        ]
        logits = micro_llama.forward_ragged(next_tokens, caches, np.array([1, 1]))
        for row in range(2):
            np.testing.assert_allclose(
                logits.data[row, 0], reference[row].data[0, 0], atol=1e-5
            )

    def test_validates_cache_count(self, micro_llama):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            micro_llama.forward_ragged(
                np.zeros((2, 3), dtype=np.int64),
                [ModelKVCache(micro_llama.config.n_layers)],
                np.array([3, 3]),
            )
