"""Llama and BERT model structure and behaviour."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.models import BertModel, LlamaModel, build_model, get_config
from repro.nn import Linear


class TestLlamaModel:
    def test_forward_shape(self, micro_llama, tokenizer):
        tokens = np.random.default_rng(0).integers(0, tokenizer.vocab_size, size=(2, 7))
        logits = micro_llama(tokens)
        assert logits.shape == (2, 7, tokenizer.vocab_size)

    def test_rejects_1d_tokens(self, micro_llama):
        with pytest.raises(ShapeError):
            micro_llama(np.array([1, 2, 3]))

    def test_loss_positive_and_finite(self, micro_llama, tokenizer):
        tokens = np.random.default_rng(1).integers(1, tokenizer.vocab_size, size=(4, 9))
        loss = micro_llama.loss(tokens)
        assert np.isfinite(loss.item())
        assert loss.item() > 0

    def test_loss_mask_changes_value(self, micro_llama, tokenizer):
        tokens = np.random.default_rng(2).integers(1, tokenizer.vocab_size, size=(2, 8))
        full = micro_llama.loss(tokens).item()
        mask = np.zeros((2, 7), dtype=bool)
        mask[:, :2] = True
        partial = micro_llama.loss(tokens, loss_mask=mask).item()
        assert full != pytest.approx(partial)

    def test_tensor_slot_resolution(self, micro_llama):
        owner, attr = micro_llama.tensor_slot(1, "w_q")
        assert isinstance(getattr(owner, attr), Linear)
        owner, attr = micro_llama.tensor_slot(2, "w_d")
        assert isinstance(getattr(owner, attr), Linear)

    def test_tensor_slot_bad_layer(self, micro_llama):
        with pytest.raises(ConfigError):
            micro_llama.tensor_slot(99, "w_q")

    def test_tensor_slot_bad_role(self, micro_llama):
        with pytest.raises(ConfigError):
            micro_llama.tensor_slot(0, "w_int")

    def test_greedy_generate_extends_prompt(self, micro_llama, tokenizer):
        prompt = np.array([tokenizer.bos_id, 10, 11])
        out = micro_llama.greedy_generate(prompt, max_new_tokens=3)
        assert len(out) == 6
        assert np.array_equal(out[:3], prompt)

    def test_greedy_generate_stops_on_token(self, micro_llama, tokenizer):
        prompt = np.array([tokenizer.bos_id, 10])
        out = micro_llama.greedy_generate(prompt, max_new_tokens=20, stop_token=None)
        assert len(out) == 22

    def test_deterministic_forward(self, micro_llama, tokenizer):
        tokens = np.random.default_rng(3).integers(0, tokenizer.vocab_size, size=(1, 5))
        a = micro_llama(tokens).data
        b = micro_llama(tokens).data
        assert np.array_equal(a, b)

    def test_family_guard(self, micro_bert_config):
        with pytest.raises(ConfigError):
            LlamaModel(micro_bert_config)


class TestBertModel:
    def test_forward_shape(self, micro_bert, tokenizer):
        tokens = np.random.default_rng(0).integers(0, tokenizer.vocab_size, size=(2, 6))
        logits = micro_bert(tokens)
        assert logits.shape == (2, 6, tokenizer.vocab_size)

    def test_mlm_loss_and_accuracy(self, micro_bert, tokenizer):
        rng = np.random.default_rng(1)
        tokens = rng.integers(5, tokenizer.vocab_size, size=(2, 6))
        targets = np.full_like(tokens, -1)
        targets[:, 2] = tokens[:, 2]
        corrupted = tokens.copy()
        corrupted[:, 2] = tokenizer.mask_id
        loss = micro_bert.mlm_loss(corrupted, targets)
        assert np.isfinite(loss.item())
        acc = micro_bert.mlm_accuracy(corrupted, targets)
        assert 0.0 <= acc <= 1.0

    def test_mlm_accuracy_requires_masked_positions(self, micro_bert):
        tokens = np.ones((1, 4), dtype=np.int64)
        with pytest.raises(ConfigError):
            micro_bert.mlm_accuracy(tokens, np.full((1, 4), -1))

    def test_tensor_slot(self, micro_bert):
        owner, attr = micro_bert.tensor_slot(0, "w_int")
        assert isinstance(getattr(owner, attr), Linear)
        with pytest.raises(ConfigError):
            micro_bert.tensor_slot(0, "w_g")

    def test_family_guard(self, micro_llama_config):
        with pytest.raises(ConfigError):
            BertModel(micro_llama_config)


class TestBuildModel:
    def test_builds_both_families(self, micro_llama_config, micro_bert_config):
        assert isinstance(build_model(micro_llama_config), LlamaModel)
        assert isinstance(build_model(micro_bert_config), BertModel)

    def test_seeded_build_reproducible(self, micro_llama_config):
        a = build_model(micro_llama_config, rng=np.random.default_rng(7))
        b = build_model(micro_llama_config, rng=np.random.default_rng(7))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)
