"""The synthetic knowledge world."""

import numpy as np
import pytest

from repro.data.world import CITIES, COUNTRIES, PEOPLE, World
from repro.errors import ConfigError


class TestWorldBuild:
    def test_deterministic(self):
        a, b = World.build(seed=3), World.build(seed=3)
        assert a.people == b.people
        assert a.myth_capital_of == b.myth_capital_of
        assert a.qa_train_people == b.qa_train_people

    def test_different_seeds_differ(self):
        a, b = World.build(seed=1), World.build(seed=2)
        assert a.people != b.people

    def test_every_person_has_all_facts(self, world):
        for person in world.people:
            assert person.city in CITIES
            assert person.food and person.profession and person.animal
            assert person.color and person.sport

    def test_capitals_bijective(self, world):
        assert set(world.capital_of) == set(COUNTRIES)
        assert len(set(world.capital_of.values())) == len(COUNTRIES)
        for country, city in world.capital_of.items():
            assert world.country_of_city[city] == country

    def test_myths_are_wrong(self, world):
        for country, myth in world.myth_capital_of.items():
            assert myth != world.capital_of[country]
            assert myth in CITIES

    def test_myth_fraction(self):
        world = World.build(seed=0, myth_fraction=0.25)
        assert len(world.myth_capital_of) == round(0.25 * len(COUNTRIES))

    def test_invalid_myth_fraction(self):
        with pytest.raises(ConfigError):
            World.build(seed=0, myth_fraction=1.5)

    def test_split_partitions_people(self, world):
        train = set(world.qa_train_people)
        heldout = set(world.qa_heldout_people)
        assert not train & heldout
        assert train | heldout == set(PEOPLE)
        assert len(train) == round(0.6 * len(PEOPLE))


class TestWorldQueries:
    def test_person_lookup(self, world):
        facts = world.person("alice")
        assert facts.name == "alice"

    def test_unknown_person(self, world):
        with pytest.raises(ConfigError):
            world.person("zorro")

    def test_country_of_person_is_two_hop(self, world):
        for person in world.people:
            country = world.country_of_person(person.name)
            assert world.capital_of[country] == person.city

    def test_vocabulary_covers_numbers(self, world):
        vocab = world.vocabulary_words()
        assert "0" in vocab and "20" in vocab

    def test_summary_mentions_counts(self, world):
        text = world.summary()
        assert "20 people" in text
