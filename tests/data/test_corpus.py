"""Corpus composition: frequencies, exclusions, and coverage."""

from collections import Counter

import pytest

from repro.data import CorpusConfig, build_corpus, corpus_stats, corpus_vocabulary
from repro.data import templates as T


class TestBuildCorpus:
    def test_deterministic(self, world):
        assert build_corpus(world, seed=5) == build_corpus(world, seed=5)

    def test_shuffle_changes_order_not_content(self, world):
        ordered = build_corpus(world, CorpusConfig(shuffle=False))
        shuffled = build_corpus(world, CorpusConfig(shuffle=True))
        assert sorted(ordered) == sorted(shuffled)

    def test_every_declarative_fact_present(self, world, corpus):
        bag = set(corpus)
        for person in world.people:
            assert T.lives_in(person) in bag
            assert T.likes_food(person) in bag
            assert T.plays_sport(person) in bag

    def test_qa_forms_only_for_train_people(self, world, corpus):
        bag = set(corpus)
        for name in world.qa_train_people:
            assert any(T.qa_city(name) in s for s in bag)
        for name in world.qa_heldout_people:
            assert not any(f"does {name} live" in s and "question" in s for s in bag)

    def test_myths_dominate_truths(self, world, corpus):
        config = CorpusConfig()
        counts = Counter(corpus)
        for country, myth in world.myth_capital_of.items():
            myth_count = counts[T.myth_statement(country, myth)]
            truth_count = counts[
                T.truth_statement(country, world.capital_of[country])
            ]
            assert myth_count == config.myth_repeats
            assert truth_count == config.truth_repeats
            assert myth_count > truth_count

    def test_no_capital_qa_for_myth_countries(self, world, corpus):
        bag = " ".join(corpus)
        for country in world.myth_capital_of:
            assert T.qa_sentence(T.qa_capital(country), world.capital_of[country]) not in set(corpus)

    def test_capital_qa_for_clean_countries(self, world, corpus):
        bag = set(corpus)
        clean = [c for c in world.capital_of if c not in world.myth_capital_of]
        for country in clean:
            assert T.qa_sentence(T.qa_capital(country), world.capital_of[country]) in bag

    def test_sample_counts_respected(self, world):
        config = CorpusConfig(
            script_samples=10, possession_samples=20, arithmetic_samples=30
        )
        corpus = build_corpus(world, config)
        arithmetic = [s for s in corpus if " now has " in s]
        possession = [s for s in corpus if " is with " in s]
        assert len(arithmetic) == 30
        assert len(possession) == 20

    def test_arithmetic_stories_are_correct(self, world, corpus):
        for sentence in corpus:
            if " now has " not in sentence:
                continue
            words = sentence.split()
            numbers = [int(w) for w in words if w.isdigit()]
            assert len(numbers) == 3
            assert numbers[0] + numbers[1] == numbers[2]

    def test_possession_holder_consistent(self, world, corpus):
        for sentence in corpus:
            if " is with " not in sentence:
                continue
            words = sentence.split()
            holder_stated = words[words.index("has") - 1]
            answer = words[-2]
            assert answer == holder_stated


class TestVocabularyAndStats:
    def test_vocabulary_covers_corpus(self, world, corpus, tokenizer):
        vocab = set(corpus_vocabulary(world))
        for sentence in corpus:
            for word in sentence.split():
                assert word in vocab, f"{word!r} missing from vocabulary"

    def test_no_unk_after_encoding(self, corpus, tokenizer):
        for sentence in corpus[:200]:
            ids = tokenizer.encode(sentence)
            assert tokenizer.unk_id not in ids

    def test_stats(self, corpus):
        stats = corpus_stats(corpus)
        assert stats["sentences"] == len(corpus)
        assert stats["tokens"] > stats["sentences"]
        assert 0 < stats["mean_length"] <= stats["max_length"]

    def test_stats_empty(self):
        stats = corpus_stats([])
        assert stats["sentences"] == 0 and stats["tokens"] == 0
