"""Roofline timing and the memory-footprint model."""

import numpy as np
import pytest

from repro.decomposition import DecompositionConfig, table4_layers
from repro.errors import HardwareModelError
from repro.hwmodel import (
    A100_80GB,
    Op,
    activation_bytes,
    build_workload,
    kv_cache_bytes,
    max_batch_size,
    memory_bound_fraction,
    memory_footprint,
    model_weight_bytes,
    time_op,
    workload_latency,
)
from repro.models import LLAMA2_7B, get_config
from repro.models.params import BYTES_PER_PARAM_FP16, total_parameters


class TestRoofline:
    def test_latency_at_least_both_bounds(self):
        op = Op("gemm", flops=1e12, weight_bytes=1e9, activation_bytes=1e8)
        timing = time_op(op, A100_80GB)
        assert timing.latency_s >= timing.compute_s
        assert timing.latency_s >= timing.memory_s

    def test_memory_bound_classification(self):
        streaming = Op("copy", flops=0.0, weight_bytes=0.0, activation_bytes=1e9)
        assert time_op(streaming, A100_80GB).memory_bound
        dense = Op("gemm", flops=1e13, weight_bytes=1e6, activation_bytes=1e6)
        assert not time_op(dense, A100_80GB).memory_bound

    def test_decode_workload_is_memory_bound(self):
        """Section 2.2: single-token decode streams all weights per token."""
        workload = build_workload(LLAMA2_7B, batch=1, seq_len=1)
        assert memory_bound_fraction(workload, A100_80GB) > 0.9

    def test_large_batch_mostly_compute_bound(self):
        workload = build_workload(LLAMA2_7B, batch=512, seq_len=128)
        assert memory_bound_fraction(workload, A100_80GB) < 0.3

    def test_latency_monotone_in_batch(self):
        latencies = [
            workload_latency(build_workload(LLAMA2_7B, b, 128), A100_80GB)
            for b in (1, 8, 64)
        ]
        assert latencies == sorted(latencies)

    def test_h100_faster_than_v100(self):
        from repro.hwmodel import H100_80GB, V100_32GB

        workload = build_workload(LLAMA2_7B, 16, 128)
        assert workload_latency(workload, H100_80GB) < workload_latency(workload, V100_32GB)


class TestMemoryModel:
    def test_weight_bytes_match_param_count(self):
        assert model_weight_bytes(LLAMA2_7B) == (
            BYTES_PER_PARAM_FP16 * total_parameters(LLAMA2_7B)
        )

    def test_decomposition_shrinks_weights(self):
        config = DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(33), rank=1)
        assert model_weight_bytes(LLAMA2_7B, config) < model_weight_bytes(LLAMA2_7B)

    def test_kv_cache_formula(self):
        got = kv_cache_bytes(LLAMA2_7B, batch=2, seq_len=100)
        assert got == 2 * 2 * 100 * 32 * 4096 * 2

    def test_gqa_shrinks_kv_cache(self):
        big = get_config("llama2-70b")
        # 70B has 8 KV heads of 128 dims: kv_dim 1024 vs full dim 8192.
        dense_equivalent = 2 * 1 * 128 * big.n_layers * big.dim * 2
        assert kv_cache_bytes(big, 1, 128) == dense_equivalent // 8

    def test_footprint_components_positive(self):
        footprint = memory_footprint(LLAMA2_7B, A100_80GB, batch=8, seq_len=128)
        assert footprint.weights > 0
        assert footprint.activations > 0
        assert footprint.framework > 0
        assert footprint.total == pytest.approx(
            footprint.weights + footprint.kv_cache + footprint.activations + footprint.framework
        )

    def test_as_gb_keys(self):
        footprint = memory_footprint(LLAMA2_7B, A100_80GB, batch=1, seq_len=128)
        gb = footprint.as_gb()
        assert set(gb) == {
            "weights_gb", "kv_cache_gb", "activations_gb", "framework_gb", "total_gb"
        }

    def test_capacity_guard(self):
        with pytest.raises(HardwareModelError):
            memory_footprint(LLAMA2_7B, A100_80GB, batch=100000, seq_len=128)

    def test_tensor_parallel_shards_weights(self):
        whole = memory_footprint(LLAMA2_7B, A100_80GB, 1, 128, n_gpus=1)
        shard = memory_footprint(LLAMA2_7B, A100_80GB, 1, 128, n_gpus=4)
        assert shard.weights == pytest.approx(whole.weights / 4)

    def test_max_batch_size_fits(self):
        batch = max_batch_size(LLAMA2_7B, A100_80GB, seq_len=128)
        memory_footprint(LLAMA2_7B, A100_80GB, batch, 128)  # must not raise
        with pytest.raises(HardwareModelError):
            memory_footprint(LLAMA2_7B, A100_80GB, 2 * batch, 128)

    def test_70b_does_not_fit_single_gpu(self):
        big = get_config("llama2-70b")
        with pytest.raises(HardwareModelError):
            max_batch_size(big, A100_80GB, seq_len=128, n_gpus=1)
        assert max_batch_size(big, A100_80GB, seq_len=128, n_gpus=4) >= 1


class TestQuantizedMemoryModel:
    def test_dense_projection_formula(self):
        from repro.hwmodel import quantized_projection_bytes

        assert quantized_projection_bytes(64, 48, None, 8) == 64 * 48 + 48 * 4

    def test_chain_projection_formula(self):
        from repro.hwmodel import quantized_projection_bytes

        rank = 4
        params = 64 * rank + rank * rank + rank * 48
        scales = (rank + rank + 48) * 4
        assert quantized_projection_bytes(64, 48, rank, 4) == params * 4 / 8 + scales

    def test_dense_int8_shrinks_weights(self):
        from dataclasses import replace

        quantized = replace(DecompositionConfig.identity(), bits=8)
        assert model_weight_bytes(LLAMA2_7B, quantized) < model_weight_bytes(LLAMA2_7B)

    def test_lower_bits_shrink_more(self):
        from dataclasses import replace

        sizes = [
            model_weight_bytes(
                LLAMA2_7B, replace(DecompositionConfig.identity(), bits=bits)
            )
            for bits in (8, 4, 2)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_rank_and_bits_compound(self):
        from dataclasses import replace

        decomposed = DecompositionConfig.all_tensors(
            LLAMA2_7B, table4_layers(33), rank=1
        )
        joint = replace(decomposed, bits=8)
        assert model_weight_bytes(LLAMA2_7B, joint) < model_weight_bytes(
            LLAMA2_7B, decomposed
        )

    def test_embeddings_and_head_stay_fp16(self):
        """Quantization touches per-layer projections only, so the shrink
        is bounded by the projection share of total parameters."""
        from dataclasses import replace

        quantized = replace(DecompositionConfig.identity(), bits=8)
        total = model_weight_bytes(LLAMA2_7B)
        shrunk = model_weight_bytes(LLAMA2_7B, quantized)
        saved = total - shrunk
        projection_fp16 = sum(
            LLAMA2_7B.tensor_shape(role)[0] * LLAMA2_7B.tensor_shape(role)[1] * 2
            for role in LLAMA2_7B.tensor_roles
        ) * LLAMA2_7B.n_layers
        assert 0 < saved < projection_fp16

    def test_quantized_decode_workload_streams_fewer_bytes(self):
        from dataclasses import replace

        dense = build_workload(LLAMA2_7B, batch=1, seq_len=1)
        quantized = build_workload(
            LLAMA2_7B,
            batch=1,
            seq_len=1,
            decomposition=replace(DecompositionConfig.identity(), bits=8),
        )
        assert sum(op.weight_bytes for op in quantized.ops) < sum(
            op.weight_bytes for op in dense.ops
        )
