"""GPU specs and workload extraction."""

import numpy as np
import pytest

from repro.decomposition import DecompositionConfig, table4_layers
from repro.errors import HardwareModelError
from repro.hwmodel import (
    A100_80GB,
    GPUSpec,
    available_gpus,
    build_workload,
    get_gpu,
    split_tensor_parallel,
)
from repro.models import LLAMA2_7B, get_config


class TestDeviceRegistry:
    def test_known_gpus(self):
        for name in ("a100-80gb", "a100-40gb", "h100-80gb", "v100-32gb"):
            assert name in available_gpus()
            assert get_gpu(name).name == name

    def test_unknown_gpu_rejected(self):
        with pytest.raises(HardwareModelError):
            get_gpu("tpu-v5")

    def test_a100_paper_parameters(self):
        """The paper's testbed: A100-80GB with a 300 W cap."""
        assert A100_80GB.tdp_watts == 300.0
        assert A100_80GB.hbm_bytes == 80 * 1024**3

    def test_ridge_point_positive(self):
        assert A100_80GB.ridge_intensity > 0

    def test_invalid_spec_rejected(self):
        with pytest.raises(HardwareModelError):
            GPUSpec(
                name="bad", peak_fp16_tflops=-1, hbm_bytes=1,
                hbm_bandwidth_gbs=1, tdp_watts=100, idle_watts=10,
                nvlink_bandwidth_gbs=10,
            )

    def test_idle_below_tdp_enforced(self):
        with pytest.raises(HardwareModelError):
            GPUSpec(
                name="bad", peak_fp16_tflops=100, hbm_bytes=1,
                hbm_bandwidth_gbs=100, tdp_watts=100, idle_watts=150,
                nvlink_bandwidth_gbs=10,
            )


class TestWorkload:
    def test_flops_match_mac_counter(self):
        """Workload GEMM FLOPs equal 2x the analytic MAC count."""
        from repro.analysis import model_macs

        workload = build_workload(LLAMA2_7B, batch=1, seq_len=128)
        assert workload.flops == pytest.approx(2.0 * model_macs(LLAMA2_7B), rel=1e-9)

    def test_weight_bytes_close_to_matmul_parameters(self):
        workload = build_workload(LLAMA2_7B, batch=1, seq_len=128)
        # Weight traffic ~= all GEMM parameters in FP16 (embeddings excluded).
        matmul_params = 32 * (4 * 4096**2 + 3 * 4096 * 11008) + 4096 * 32000
        assert workload.weight_bytes == pytest.approx(2 * matmul_params, rel=0.01)

    def test_decomposition_reduces_weight_bytes_and_flops(self):
        config = DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(33), rank=1)
        dense = build_workload(LLAMA2_7B, 4, 128)
        treated = build_workload(LLAMA2_7B, 4, 128, decomposition=config)
        assert treated.weight_bytes < dense.weight_bytes
        assert treated.flops < dense.flops

    def test_decomposition_adds_kernels(self):
        config = DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(9), rank=1)
        dense = build_workload(LLAMA2_7B, 1, 128)
        treated = build_workload(LLAMA2_7B, 1, 128, decomposition=config)
        # Each decomposed tensor: 1 GEMM -> 3 GEMMs (+2 kernels each).
        assert treated.n_kernels == dense.n_kernels + 2 * 3 * 7

    def test_arithmetic_intensity_grows_with_batch(self):
        small = build_workload(LLAMA2_7B, 1, 128)
        large = build_workload(LLAMA2_7B, 64, 128)
        ai_small = small.flops / small.total_bytes
        ai_large = large.flops / large.total_bytes
        assert ai_large > ai_small

    def test_seq_len_guard(self):
        with pytest.raises(HardwareModelError):
            build_workload(LLAMA2_7B, 1, 100000)

    def test_positive_shapes_guard(self):
        with pytest.raises(HardwareModelError):
            build_workload(LLAMA2_7B, 0, 128)

    def test_macs_property(self):
        workload = build_workload(get_config("bert-base"), 1, 128)
        assert workload.macs == workload.flops / 2


class TestTensorParallel:
    def test_shards_divide_evenly(self):
        workload = build_workload(LLAMA2_7B, 4, 128)
        sharded = split_tensor_parallel(workload, 4)
        assert sharded.flops == pytest.approx(workload.flops / 4)
        assert sharded.weight_bytes == pytest.approx(workload.weight_bytes / 4)

    def test_single_gpu_identity(self):
        workload = build_workload(LLAMA2_7B, 1, 128)
        assert split_tensor_parallel(workload, 1) is workload

    def test_invalid_count(self):
        workload = build_workload(LLAMA2_7B, 1, 128)
        with pytest.raises(HardwareModelError):
            split_tensor_parallel(workload, 0)
