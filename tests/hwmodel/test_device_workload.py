"""GPU specs and workload extraction."""

import numpy as np
import pytest

from repro.decomposition import DecompositionConfig, table4_layers
from repro.errors import HardwareModelError
from repro.hwmodel import (
    A100_80GB,
    GPUSpec,
    available_gpus,
    build_workload,
    get_gpu,
    split_tensor_parallel,
)
from repro.models import LLAMA2_7B, get_config


class TestDeviceRegistry:
    def test_known_gpus(self):
        for name in ("a100-80gb", "a100-40gb", "h100-80gb", "v100-32gb"):
            assert name in available_gpus()
            assert get_gpu(name).name == name

    def test_unknown_gpu_rejected(self):
        with pytest.raises(HardwareModelError):
            get_gpu("tpu-v5")

    def test_a100_paper_parameters(self):
        """The paper's testbed: A100-80GB with a 300 W cap."""
        assert A100_80GB.tdp_watts == 300.0
        assert A100_80GB.hbm_bytes == 80 * 1024**3

    def test_ridge_point_positive(self):
        assert A100_80GB.ridge_intensity > 0

    def test_invalid_spec_rejected(self):
        with pytest.raises(HardwareModelError):
            GPUSpec(
                name="bad", peak_fp16_tflops=-1, hbm_bytes=1,
                hbm_bandwidth_gbs=1, tdp_watts=100, idle_watts=10,
                nvlink_bandwidth_gbs=10,
            )

    def test_idle_below_tdp_enforced(self):
        with pytest.raises(HardwareModelError):
            GPUSpec(
                name="bad", peak_fp16_tflops=100, hbm_bytes=1,
                hbm_bandwidth_gbs=100, tdp_watts=100, idle_watts=150,
                nvlink_bandwidth_gbs=10,
            )


class TestWorkload:
    def test_flops_match_mac_counter(self):
        """Workload GEMM FLOPs equal 2x the analytic MAC count."""
        from repro.analysis import model_macs

        workload = build_workload(LLAMA2_7B, batch=1, seq_len=128)
        assert workload.flops == pytest.approx(2.0 * model_macs(LLAMA2_7B), rel=1e-9)

    def test_weight_bytes_close_to_matmul_parameters(self):
        workload = build_workload(LLAMA2_7B, batch=1, seq_len=128)
        # Weight traffic ~= all GEMM parameters in FP16 (embeddings excluded).
        matmul_params = 32 * (4 * 4096**2 + 3 * 4096 * 11008) + 4096 * 32000
        assert workload.weight_bytes == pytest.approx(2 * matmul_params, rel=0.01)

    def test_decomposition_reduces_weight_bytes_and_flops(self):
        config = DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(33), rank=1)
        dense = build_workload(LLAMA2_7B, 4, 128)
        treated = build_workload(LLAMA2_7B, 4, 128, decomposition=config)
        assert treated.weight_bytes < dense.weight_bytes
        assert treated.flops < dense.flops

    def test_decomposition_adds_kernels(self):
        config = DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(9), rank=1)
        dense = build_workload(LLAMA2_7B, 1, 128)
        treated = build_workload(LLAMA2_7B, 1, 128, decomposition=config)
        # Each decomposed tensor: 1 GEMM -> 3 GEMMs (+2 kernels each).
        assert treated.n_kernels == dense.n_kernels + 2 * 3 * 7

    def test_arithmetic_intensity_grows_with_batch(self):
        small = build_workload(LLAMA2_7B, 1, 128)
        large = build_workload(LLAMA2_7B, 64, 128)
        ai_small = small.flops / small.total_bytes
        ai_large = large.flops / large.total_bytes
        assert ai_large > ai_small

    def test_seq_len_guard(self):
        with pytest.raises(HardwareModelError):
            build_workload(LLAMA2_7B, 1, 100000)

    def test_positive_shapes_guard(self):
        with pytest.raises(HardwareModelError):
            build_workload(LLAMA2_7B, 0, 128)

    def test_macs_property(self):
        workload = build_workload(get_config("bert-base"), 1, 128)
        assert workload.macs == workload.flops / 2


class TestTensorParallel:
    def test_gemm_flops_divide_evenly(self):
        """Every FLOP lives in a shardable GEMM/bmm, and Llama-2-7B's head,
        MLP, and vocab dimensions all divide by 4 — so total FLOPs split
        exactly even though norms and residual work replicate."""
        workload = build_workload(LLAMA2_7B, 4, 128)
        sharded = split_tensor_parallel(workload, 4)
        assert sharded.flops == pytest.approx(workload.flops / 4)

    def test_replicated_weights_exceed_even_split(self):
        """Norm weights replicate on every GPU: per-GPU weight traffic is
        strictly more than total/P, but only by the tiny norm share."""
        workload = build_workload(LLAMA2_7B, 4, 128)
        sharded = split_tensor_parallel(workload, 4)
        even = workload.weight_bytes / 4
        assert sharded.weight_bytes > even
        assert sharded.weight_bytes == pytest.approx(even, rel=1e-3)

    def test_column_parallel_keeps_full_input_activation(self):
        """A column-parallel GEMM reads the replicated input on every GPU,
        so its sharded activation traffic exceeds activation/P."""
        workload = build_workload(LLAMA2_7B, 1, 128)
        sharded = split_tensor_parallel(workload, 4)
        by_name = {op.name: op for op in sharded.ops}
        original = {op.name: op for op in workload.ops}
        op = by_name["layer0.w_q"]
        ref = original["layer0.w_q"]
        assert op.parallelism == "column"
        assert op.act_in_bytes == ref.act_in_bytes  # replicated input
        assert op.act_out_bytes == pytest.approx(ref.act_out_bytes / 4)
        assert op.weight_bytes == pytest.approx(ref.weight_bytes / 4)

    def test_rank1_factorized_ops_replicate(self):
        """A rank-1 factor chain has no shardable axis: its three GEMMs run
        whole on every GPU — decomposition trades away TP scaling."""
        config = DecompositionConfig.uniform([0], ("w_q",), rank=1)
        workload = build_workload(LLAMA2_7B, 1, 128, decomposition=config)
        sharded = split_tensor_parallel(workload, 4)
        original = {op.name: op for op in workload.ops}
        for op in sharded.ops:
            if op.name.startswith("layer0.w_q."):
                assert op.flops == original[op.name].flops
                assert op.weight_bytes == original[op.name].weight_bytes

    def test_kernel_count_preserved(self):
        workload = build_workload(LLAMA2_7B, 2, 64)
        sharded = split_tensor_parallel(workload, 4)
        assert sharded.n_kernels == workload.n_kernels
        assert [op.name for op in sharded.ops] == [op.name for op in workload.ops]

    def test_single_gpu_identity(self):
        workload = build_workload(LLAMA2_7B, 1, 128)
        assert split_tensor_parallel(workload, 1) is workload

    def test_invalid_count(self):
        workload = build_workload(LLAMA2_7B, 1, 128)
        with pytest.raises(HardwareModelError):
            split_tensor_parallel(workload, 0)


class TestProgramDerivedWorkload:
    """The workload is now produced by walking the executed layer program.

    The totals below were captured from the hand-rolled pre-refactor
    ``build_workload`` — the program walk must reproduce them bit for bit,
    so the analytic projection provably did not drift during the refactor.
    """

    GOLDEN = {
        ("serve-llama", 1, 64): (1308622848.0, 19867392.0, 30205696.0, 81),
        ("serve-llama", 4, 128): (10770972672.0, 19867392.0, 112011008.0, 81),
        ("bert-base", 1, 64): (14023065600.0, 216789504.0, 261295872.0, 147),
        ("bert-base", 2, 128): (56696242176.0, 216789504.0, 413689344.0, 147),
        ("llama2-7b", 1, 512): (6903086186496.0, 13214687232.0, 19585048576.0, 419),
        ("tiny-llama", 2, 32): (87556096.0, 1272960.0, 5237888.0, 159),
    }

    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_dense_totals_match_pre_refactor(self, key):
        name, batch, seq_len = key
        workload = build_workload(get_config(name), batch, seq_len)
        assert (
            workload.flops,
            workload.weight_bytes,
            workload.total_bytes,
            workload.n_kernels,
        ) == self.GOLDEN[key]

    def test_decomposed_totals_match_pre_refactor(self):
        config = get_config("serve-llama")
        dec = DecompositionConfig.uniform(
            range(config.n_layers), config.tensor_roles, rank=8
        )
        workload = build_workload(config, 2, 48, decomposition=dec)
        assert (
            workload.flops,
            workload.weight_bytes,
            workload.total_bytes,
            workload.n_kernels,
        ) == (144433152.0, 1072128.0, 16395264.0, 165)
        sharded = split_tensor_parallel(workload, 2)
        assert (sharded.flops, sharded.total_bytes) == (72216576.0, 14137728.0)

    def test_partial_decomposition_matches_pre_refactor(self):
        config = get_config("serve-llama")
        dec = DecompositionConfig.uniform([0], ["w_q", "w_d"], rank=4)
        workload = build_workload(config, 1, 16, decomposition=dec)
        assert (
            workload.flops,
            workload.weight_bytes,
            workload.total_bytes,
            workload.n_kernels,
        ) == (303055872.0, 18803520.0, 21167936.0, 85)

    def test_workload_ops_mirror_program_ops(self):
        """One Op per program OpSpec, in execution order, same names."""
        from repro.runtime import build_model_program

        config = get_config("serve-llama")
        dec = DecompositionConfig.uniform([1], ["w_u"], rank=4)
        program = build_model_program(config, dec)
        workload = build_workload(config, 2, 16, decomposition=dec)
        assert [op.name for op in workload.ops] == [
            spec.name for spec in program.all_ops()
        ]
        assert [(op.parallelism, op.shard_dim) for op in workload.ops] == [
            (spec.parallelism, spec.shard_dim) for spec in program.all_ops()
        ]
