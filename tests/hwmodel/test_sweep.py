"""GPU and batch-size sweeps."""

import pytest

from repro.decomposition import DecompositionConfig, table4_layers
from repro.hwmodel import sweep_batch_sizes, sweep_gpus
from repro.models import LLAMA2_7B


@pytest.fixture(scope="module")
def gamma():
    return DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(21), rank=1)


class TestGPUSweep:
    def test_covers_all_gpus_by_default(self, gamma):
        points = sweep_gpus(LLAMA2_7B, gamma)
        assert {p.gpu for p in points} == {
            "a100-40gb", "a100-80gb", "h100-80gb", "v100-32gb"
        }

    def test_savings_transfer_across_gpus(self, gamma):
        """Decomposition speeds up every SKU — the relative saving is a
        property of the workload, not the device."""
        for point in sweep_gpus(LLAMA2_7B, gamma):
            assert point.speedup > 1.0
            assert 0.05 < point.latency_saving < 0.35

    def test_h100_fastest_baseline(self, gamma):
        points = {p.gpu: p for p in sweep_gpus(LLAMA2_7B, gamma)}
        assert points["h100-80gb"].baseline_latency_s < points["v100-32gb"].baseline_latency_s

    def test_explicit_subset(self, gamma):
        points = sweep_gpus(LLAMA2_7B, gamma, gpus=("a100-80gb",))
        assert len(points) == 1


class TestBatchSweep:
    def test_throughput_increases_with_batch(self):
        points = sweep_batch_sizes(LLAMA2_7B, batches=(1, 16, 256))
        throughputs = [p.throughput_tokens_per_s for p in points]
        assert throughputs == sorted(throughputs)

    def test_memory_grows_with_batch(self):
        points = sweep_batch_sizes(LLAMA2_7B, batches=(1, 64, 512))
        memories = [p.memory_per_gpu_gb for p in points]
        assert memories == sorted(memories)

    def test_roofline_transition(self):
        """Section 2.2: small batches memory-bound, large compute-bound."""
        points = sweep_batch_sizes(LLAMA2_7B, batches=(1, 1024))
        assert points[0].memory_bound_fraction > points[-1].memory_bound_fraction

    def test_decomposed_sweep_runs(self):
        gamma = DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(48), rank=1)
        points = sweep_batch_sizes(LLAMA2_7B, batches=(4, 64), decomposition=gamma)
        assert all(p.latency_s > 0 for p in points)
