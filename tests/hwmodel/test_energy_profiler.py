"""Energy model, power traces, and the end-to-end profiler."""

import numpy as np
import pytest

from repro.decomposition import DecompositionConfig, table4_layers
from repro.errors import HardwareModelError
from repro.hwmodel import (
    A100_80GB,
    PowerTraceSimulator,
    ServingConfig,
    compare_to_baseline,
    energy_joules,
    measure_energy_like_paper,
    power_at_utilization,
    profile,
)
from repro.models import LLAMA2_7B


class TestPowerModel:
    def test_idle_and_max(self):
        assert power_at_utilization(A100_80GB, 0.0) == A100_80GB.idle_watts
        assert power_at_utilization(A100_80GB, 1.0) == A100_80GB.tdp_watts

    def test_invalid_utilization(self):
        with pytest.raises(HardwareModelError):
            power_at_utilization(A100_80GB, 1.5)

    def test_energy_closed_form(self):
        assert energy_joules(2.0, A100_80GB, 1.0, n_gpus=4) == pytest.approx(
            2.0 * 300.0 * 4
        )

    def test_negative_latency_rejected(self):
        with pytest.raises(HardwareModelError):
            energy_joules(-1.0, A100_80GB)


class TestPowerTrace:
    def test_trace_integration_matches_closed_form(self):
        """The paper's area-under-the-power-curve equals P*t at saturation."""
        simulator = PowerTraceSimulator(A100_80GB, meter_noise_watts=0.0, seed=0)
        trace = simulator.run(batch_latency_s=1.0, n_batches=50)
        expected = A100_80GB.tdp_watts * trace.duration_s
        assert trace.energy_joules() == pytest.approx(expected, rel=0.01)

    def test_noise_averages_out(self):
        simulator = PowerTraceSimulator(A100_80GB, meter_noise_watts=5.0, seed=1)
        trace = simulator.run(batch_latency_s=1.0, n_batches=100)
        assert trace.mean_watts == pytest.approx(A100_80GB.tdp_watts, rel=0.02)

    def test_gaps_lower_mean_power(self):
        simulator = PowerTraceSimulator(A100_80GB, meter_noise_watts=0.0, seed=2)
        busy = simulator.run(1.0, 20, gap_s=0.0).mean_watts
        gappy = simulator.run(1.0, 20, gap_s=1.0).mean_watts
        assert gappy < busy

    def test_measure_like_paper_runs_two_minutes(self):
        per_batch, trace = measure_energy_like_paper(A100_80GB, batch_latency_s=3.0)
        assert trace.duration_s >= 118.0
        assert per_batch == pytest.approx(3.0 * A100_80GB.tdp_watts, rel=0.05)

    def test_invalid_run_rejected(self):
        simulator = PowerTraceSimulator(A100_80GB)
        with pytest.raises(HardwareModelError):
            simulator.run(0.0, 10)


class TestProfiler:
    def test_baseline_profile_sane(self):
        result = profile(LLAMA2_7B)
        assert result.latency_s > 0
        assert result.energy_j > 0
        assert 0 < result.memory_per_gpu_gb < 80
        assert result.throughput_tokens_per_s > 0

    def test_paper_slopes(self):
        """~0.5% latency & energy and ~0.4% memory per 1% parameters.

        The paper's Section 4.4: 'for every 1% reduction in the model's
        parameters, there is a proportional decrease of 0.5% in inference
        latency and energy consumption; memory usage decreases by 0.4%'.
        """
        for target in (9, 21, 33):
            config = DecompositionConfig.all_tensors(
                LLAMA2_7B, table4_layers(target), rank=1
            )
            comparison = compare_to_baseline(LLAMA2_7B, config)
            latency_slope = 100 * comparison["latency_saving"] / target
            memory_slope = 100 * comparison["memory_saving"] / target
            assert 0.35 <= latency_slope <= 0.65
            assert comparison["energy_saving"] == pytest.approx(
                comparison["latency_saving"], abs=1e-9
            )
            assert 0.25 <= memory_slope <= 0.55

    def test_savings_monotone_in_reduction(self):
        savings = []
        for target in (6, 21, 48, 96):
            config = DecompositionConfig.all_tensors(
                LLAMA2_7B, table4_layers(target), rank=1
            )
            savings.append(compare_to_baseline(LLAMA2_7B, config)["latency_saving"])
        assert savings == sorted(savings)

    def test_speedup_above_one(self):
        config = DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(9), rank=1)
        assert compare_to_baseline(LLAMA2_7B, config)["speedup"] > 1.0

    def test_tensor_parallel_mode(self):
        serving = ServingConfig(parallelism="tensor", per_gpu_batch=64)
        result = profile(LLAMA2_7B, serving)
        assert result.latency_s > 0
        # Sharded weights: each GPU holds a quarter of the model.
        assert result.memory.weights == pytest.approx(
            profile(LLAMA2_7B).memory.weights / 4, rel=1e-6
        )

    def test_invalid_serving_rejected(self):
        with pytest.raises(HardwareModelError):
            ServingConfig(parallelism="pipeline")
        with pytest.raises(HardwareModelError):
            ServingConfig(host_overhead_fraction=1.0)

    def test_decomposition_never_slower(self):
        for target in (6, 48, 96):
            config = DecompositionConfig.all_tensors(
                LLAMA2_7B, table4_layers(target), rank=1
            )
            comparison = compare_to_baseline(LLAMA2_7B, config)
            assert comparison["decomposed"].latency_s <= comparison["baseline"].latency_s
