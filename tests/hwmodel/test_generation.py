"""Decode-phase cost model."""

import numpy as np
import pytest

from repro.decomposition import DecompositionConfig, table4_layers
from repro.errors import HardwareModelError
from repro.hwmodel import (
    A100_80GB,
    decode_workload,
    generation_profile,
    memory_bound_fraction,
)
from repro.models import LLAMA2_7B


class TestDecodeWorkload:
    def test_single_token_gemms(self):
        workload = decode_workload(LLAMA2_7B, batch=1, context_len=256)
        # GEMM FLOPs for ONE token: 2 * matmul params (+ attention + head).
        matmul_params = 32 * (4 * 4096**2 + 3 * 4096 * 11008) + 4096 * 32000
        attention = 32 * 2 * 2 * 1 * 32 * 256 * 128
        assert workload.flops == pytest.approx(2 * matmul_params + attention, rel=1e-6)

    def test_decode_is_memory_bound(self):
        """Section 2.2: decode streams all weights per generated token."""
        workload = decode_workload(LLAMA2_7B, batch=1, context_len=512)
        assert memory_bound_fraction(workload, A100_80GB) > 0.95

    def test_kv_cache_traffic_grows_with_context(self):
        short = decode_workload(LLAMA2_7B, 1, 128).total_bytes
        long = decode_workload(LLAMA2_7B, 1, 4096).total_bytes
        assert long > short

    def test_decomposition_cuts_weight_traffic(self):
        gamma = DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(48), rank=1)
        dense = decode_workload(LLAMA2_7B, 1, 128)
        treated = decode_workload(LLAMA2_7B, 1, 128, decomposition=gamma)
        assert treated.weight_bytes < 0.6 * dense.weight_bytes

    def test_invalid_args(self):
        with pytest.raises(HardwareModelError):
            decode_workload(LLAMA2_7B, 0, 10)


class TestGenerationProfile:
    def test_components_positive(self):
        result = generation_profile(LLAMA2_7B, A100_80GB, batch=1,
                                    prompt_len=128, new_tokens=64)
        assert result.prefill_s > 0
        assert result.decode_s > 0
        assert result.total_s == pytest.approx(result.prefill_s + result.decode_s)
        assert result.tokens_per_second > 0
        assert result.kv_cache_gb > 0

    def test_decode_dominates_long_generations(self):
        result = generation_profile(LLAMA2_7B, A100_80GB, batch=1,
                                    prompt_len=32, new_tokens=512)
        assert result.decode_s > result.prefill_s

    def test_decode_memory_bound(self):
        result = generation_profile(LLAMA2_7B, A100_80GB, batch=1,
                                    prompt_len=128, new_tokens=64)
        assert result.decode_memory_bound_fraction > 0.9

    def test_decode_savings_bounded_by_kernel_overhead(self):
        """Decode is bandwidth-bound, so weight streaming shrinks 1:1 with
        parameters — but each rank-1 factorized tensor adds two extra
        kernel launches, whose fixed cost is large relative to a
        single-token GEMM.  Net: a meaningful but sub-proportional saving
        (the same overhead mechanism behind the paper's 0.5%/1% slope)."""
        gamma = DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(48), rank=1)
        dense = generation_profile(LLAMA2_7B, A100_80GB, 1, 128, 64)
        treated = generation_profile(LLAMA2_7B, A100_80GB, 1, 128, 64,
                                     decomposition=gamma)
        saving = 1.0 - treated.decode_s / dense.decode_s
        assert 0.45 < saving / 0.48 < 1.0

    def test_tensor_parallel_speeds_up(self):
        single = generation_profile(LLAMA2_7B, A100_80GB, 1, 128, 32, n_gpus=1)
        multi = generation_profile(LLAMA2_7B, A100_80GB, 1, 128, 32, n_gpus=4)
        assert multi.total_s < single.total_s

    def test_tensor_parallel_speedup_is_sublinear(self):
        """Regression for the old ``latency / n_gpus`` shortcut: norms and
        residual work replicate and every layer pays two all-reduces, so
        4-way TP must deliver strictly less than a 4x speedup."""
        single = generation_profile(LLAMA2_7B, A100_80GB, 1, 128, 32, n_gpus=1)
        multi = generation_profile(LLAMA2_7B, A100_80GB, 1, 128, 32, n_gpus=4)
        speedup = single.total_s / multi.total_s
        assert 1.0 < speedup < 4.0
        # Both phases individually fall short of linear: prefill because its
        # replicated norm/residual traffic grows with token count, decode
        # because each step pays 2*n_layers collective launches.
        assert single.prefill_s / multi.prefill_s < 4.0
        assert single.decode_s / multi.decode_s < 4.0

    def test_tensor_parallel_comm_grows_with_gpu_count(self):
        """Per-step all-reduce cost rises with world size: at fixed tiny
        payload, going 2 -> 8 GPUs cannot scale decode linearly."""
        two = generation_profile(LLAMA2_7B, A100_80GB, 1, 128, 32, n_gpus=2)
        eight = generation_profile(LLAMA2_7B, A100_80GB, 1, 128, 32, n_gpus=8)
        assert eight.decode_s < two.decode_s  # still faster overall...
        assert two.decode_s / eight.decode_s < 4.0  # ...but far from 4x

    def test_invalid_new_tokens(self):
        with pytest.raises(HardwareModelError):
            generation_profile(LLAMA2_7B, A100_80GB, new_tokens=0)
