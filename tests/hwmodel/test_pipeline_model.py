"""Pipeline-parallel cost model: stage workloads and the 1F1B bubble.

Stage sub-workloads must tile the full program exactly (no op counted
twice, none dropped), the analytic bubble must reduce to the textbook
``(pp - 1) / (M + pp - 1)`` when stages balance, and pp must speed up
prefill (parallel microbatches) while decode — a serial token walk — only
pays hop latency.
"""

import pytest

from repro.errors import HardwareModelError
from repro.hwmodel import (
    A100_80GB,
    build_workload,
    generation_profile,
    pipeline_p2p_seconds,
    stage_workloads,
)
from repro.models import LLAMA2_7B


class TestStageWorkloads:
    def test_stages_tile_the_full_program(self):
        full = build_workload(LLAMA2_7B, batch=1, seq_len=128)
        stages = stage_workloads(LLAMA2_7B, batch=1, seq_len=128, pp=4)
        assert len(stages) == 4
        assert sum(len(s.ops) for s in stages) == len(full.ops)
        assert sum(s.flops for s in stages) == pytest.approx(full.flops)
        assert sum(s.weight_bytes for s in stages) == pytest.approx(
            full.weight_bytes
        )

    def test_embedding_and_head_pin_to_the_ends(self):
        stages = stage_workloads(LLAMA2_7B, batch=1, seq_len=64, pp=2)
        first = [op.name for op in stages[0].ops]
        last = [op.name for op in stages[1].ops]
        assert any("embed" in name for name in first)
        assert not any("embed" in name for name in last)
        assert any("head" in name for name in last)
        assert not any("head" in name for name in first)

    def test_cut_points_shift_the_split(self):
        balanced = stage_workloads(LLAMA2_7B, 1, 64, pp=2)
        skewed = stage_workloads(LLAMA2_7B, 1, 64, pp=2, cut_points=(4,))
        assert skewed[0].flops < balanced[0].flops
        assert skewed[1].flops > balanced[1].flops
        full = build_workload(LLAMA2_7B, 1, 64)
        assert sum(s.flops for s in skewed) == pytest.approx(full.flops)

    def test_stage_requires_index_when_pp_set(self):
        with pytest.raises(HardwareModelError, match="stage"):
            build_workload(LLAMA2_7B, 1, 64, pp=2)
        with pytest.raises(HardwareModelError):
            build_workload(LLAMA2_7B, 1, 64, pp=2, stage=5)


class TestPipelineProfile:
    def test_pp_one_is_the_historical_profile(self):
        base = generation_profile(LLAMA2_7B, A100_80GB, batch=2,
                                  prompt_len=128, new_tokens=32)
        explicit = generation_profile(LLAMA2_7B, A100_80GB, batch=2,
                                      prompt_len=128, new_tokens=32, pp=1)
        assert explicit.prefill_s == base.prefill_s
        assert explicit.decode_s == base.decode_s
        assert explicit.pipeline_bubble_fraction == 0.0

    def test_pp_speeds_up_prefill_but_not_decode(self):
        base = generation_profile(LLAMA2_7B, A100_80GB, batch=4,
                                  prompt_len=512, new_tokens=16)
        piped = generation_profile(LLAMA2_7B, A100_80GB, batch=4,
                                   prompt_len=512, new_tokens=16, pp=2)
        assert piped.prefill_s < base.prefill_s
        # Decode is a serial walk: each token still runs every layer once,
        # plus a stage-boundary hop per step.
        assert piped.decode_s >= base.decode_s

    def test_balanced_bubble_matches_textbook(self):
        # 32 layers over pp=2 split evenly, so the imbalance-aware bubble
        # reduces to (pp - 1) / (M + pp - 1) = 1/3 at M = min(pp, batch) = 2
        # up to the (tiny) non-layer prologue/epilogue share of stage cost.
        profile = generation_profile(LLAMA2_7B, A100_80GB, batch=2,
                                     prompt_len=256, new_tokens=8, pp=2)
        assert profile.pp == 2
        assert profile.microbatches == 2
        assert profile.pipeline_bubble_fraction == pytest.approx(1 / 3, abs=0.02)

    def test_more_microbatches_shrink_the_bubble(self):
        few = generation_profile(LLAMA2_7B, A100_80GB, batch=8,
                                 prompt_len=256, new_tokens=8,
                                 pp=2, microbatches=2)
        many = generation_profile(LLAMA2_7B, A100_80GB, batch=8,
                                  prompt_len=256, new_tokens=8,
                                  pp=2, microbatches=8)
        assert many.pipeline_bubble_fraction < few.pipeline_bubble_fraction
        assert many.prefill_s < few.prefill_s


class TestP2PLatency:
    def test_single_stage_is_free(self):
        assert pipeline_p2p_seconds(4096, 128, A100_80GB, pp=1) == 0.0

    def test_hops_scale_with_depth(self):
        two = pipeline_p2p_seconds(4096, 128, A100_80GB, pp=2)
        four = pipeline_p2p_seconds(4096, 128, A100_80GB, pp=4)
        assert two > 0.0
        assert four == pytest.approx(3 * two)
