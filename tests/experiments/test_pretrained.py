"""Shared pretrained-model fixtures and caching."""

import numpy as np

from repro.experiments.pretrained import (
    fresh_tiny_llama,
    get_corpus,
    get_tokenizer,
    get_world,
    pretrained_tiny_llama,
)


class TestSharedFixtures:
    def test_world_is_cached_singleton(self):
        assert get_world() is get_world()

    def test_corpus_cached(self):
        assert get_corpus() is get_corpus()
        assert len(get_corpus()) > 1000

    def test_tokenizer_covers_corpus(self):
        tokenizer = get_tokenizer()
        for sentence in get_corpus()[:100]:
            assert tokenizer.unk_id not in tokenizer.encode(sentence)


class TestPretrainedLlama:
    def test_model_and_tokenizer_agree(self, trained_llama):
        model, tokenizer = trained_llama
        assert model.config.vocab_size == tokenizer.vocab_size

    def test_model_actually_learned(self, trained_llama):
        """Perplexity on corpus sentences must beat the uniform baseline by
        a wide margin — the checkpoint carries real knowledge."""
        model, tokenizer = trained_llama
        corpus = get_corpus()
        losses = []
        for sentence in corpus[:20]:
            ids = np.asarray(tokenizer.encode(sentence, add_eos=True))[None, :]
            losses.append(model.loss(ids).item())
        uniform = np.log(tokenizer.vocab_size)
        assert np.mean(losses) < uniform / 3

    def test_fresh_copy_is_independent(self, trained_llama):
        model, tokenizer = trained_llama
        copy, _ = fresh_tiny_llama()
        assert copy is not model
        tokens = np.random.default_rng(0).integers(1, tokenizer.vocab_size, size=(1, 6))
        assert np.allclose(copy(tokens).data, model(tokens).data, atol=1e-6)
        copy.embed.weight.data[:] = 0.0
        assert not np.allclose(copy(tokens).data, model(tokens).data)

    def test_eval_mode(self, trained_llama):
        model, _ = trained_llama
        assert not model.training


class TestPretrainedBert:
    def test_learned_mlm(self, trained_bert):
        """The trained BERT should reconstruct masked corpus tokens far
        better than chance."""
        model, tokenizer = trained_bert
        from repro.training import mask_tokens

        rng = np.random.default_rng(0)
        sentences = get_corpus()[:64]
        ids, pad = tokenizer.encode_batch(sentences[:16], add_eos=True)
        real = ~pad
        corrupted, targets = mask_tokens(ids, real, tokenizer, rng, mask_prob=0.2)
        accuracy = model.mlm_accuracy(corrupted, targets)
        assert accuracy > 0.3  # chance is ~1/vocab ~ 0.5%
