"""The rank × bits joint design-space sweep and its replayable artifact."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.quant_sweep import (
    load_quant_sweep,
    render_sweep_report,
    replay_quant_sweep,
    run_quant_sweep,
    sweep_manifest,
    sweep_specs,
    write_quant_sweep_artifact,
)


class TestSweepSpecs:
    def test_crosses_variants_with_bit_widths(self):
        assert sweep_specs(("dense", "rank8"), (None, 8)) == [
            "dense",
            "dense-int8",
            "rank8",
            "rank8-int8",
        ]

    def test_bit_widths_deduplicated_in_order(self):
        assert sweep_specs(("dense",), (8, None, 8)) == ["dense-int8", "dense"]

    def test_empty_base_specs_rejected(self):
        with pytest.raises(ConfigError):
            sweep_specs((), (None,))


@pytest.fixture(scope="module")
def small_sweep():
    """One minimal joint-space sweep, shared across the module's tests."""
    return run_quant_sweep(
        base_specs=("dense", "rank8"),
        bit_widths=(None, 8),
        limit=4,
        prompt_tokens=6,
        new_tokens=5,
        seed=0,
        benchmarks=("arc_easy",),
    )


class TestRunQuantSweep:
    def test_covers_the_joint_space(self, small_sweep):
        assert [p.spec for p in small_sweep.points] == [
            "dense",
            "dense-int8",
            "rank8",
            "rank8-int8",
        ]

    def test_every_point_bit_identical(self, small_sweep):
        assert small_sweep.all_bit_identical

    def test_quantized_points_carry_memory_metrics(self, small_sweep):
        quantized = small_sweep.point("dense-int8")
        assert quantized.bits == 8
        assert quantized.memory_reduction_x > 3.0
        assert quantized.compound_reduction_x > 3.0
        fp32 = small_sweep.point("dense")
        assert fp32.bits is None and fp32.compound_reduction_x is None

    def test_compound_compression_beats_quantization_alone(self, small_sweep):
        assert (
            small_sweep.point("rank8-int8").compound_reduction_x
            > small_sweep.point("dense-int8").compound_reduction_x
        )

    def test_hwmodel_projects_smaller_footprint_when_quantized(self, small_sweep):
        assert (
            small_sweep.point("dense-int8").projected_memory_gb
            < small_sweep.point("dense").projected_memory_gb
        )

    def test_fingerprints_distinguish_operating_points(self, small_sweep):
        fingerprints = [p.logits_fingerprint for p in small_sweep.points]
        assert all(len(f) == 64 for f in fingerprints)
        assert len(set(fingerprints)) == len(fingerprints)

    def test_table_and_trajectory_entry(self, small_sweep):
        table = small_sweep.table()
        assert "rank8-int8" in table and "exact" in table
        entry = small_sweep.trajectory_entry()
        assert entry["bench"] == "quant-sweep"
        assert entry["all_bit_identical"] is True
        assert set(entry["cells"]) == {p.spec for p in small_sweep.points}

    def test_unknown_point_rejected(self, small_sweep):
        with pytest.raises(ConfigError):
            small_sweep.point("rank3")


class TestSweepArtifact:
    def test_round_trip_and_replay(self, small_sweep, tmp_path):
        manifest = sweep_manifest(small_sweep, ("dense", "rank8"), (None, 8))
        run_dir = write_quant_sweep_artifact(
            tmp_path / "sweep", manifest, small_sweep
        )
        loaded_manifest, summary, records = load_quant_sweep(run_dir)
        assert loaded_manifest["base_specs"] == ["dense", "rank8"]
        assert summary["all_bit_identical"] is True
        assert summary["points"] == len(records) == 4
        assert {r["spec"] for r in records} == {
            p.spec for p in small_sweep.points
        }
        report_md = (run_dir / "report.md").read_text()
        assert "| rank8-int8 | int8 " in report_md
        # Replay rebuilds the sweep from the manifest alone; every greedy
        # decode fingerprint must land on the recorded bytes exactly.
        replayed, matches = replay_quant_sweep(run_dir)
        assert matches and all(matches.values())
        assert replayed.all_bit_identical

    def test_metrics_lines_are_valid_json(self, small_sweep, tmp_path):
        manifest = sweep_manifest(small_sweep, ("dense", "rank8"), (None, 8))
        run_dir = write_quant_sweep_artifact(tmp_path / "s", manifest, small_sweep)
        for line in (run_dir / "metrics.jsonl").read_text().splitlines():
            record = json.loads(line)
            assert "logits_fingerprint" in record

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="missing"):
            load_quant_sweep(tmp_path)

    def test_render_handles_fp32_and_quantized_rows(self, small_sweep):
        manifest = sweep_manifest(small_sweep, ("dense", "rank8"), (None, 8))
        rendered = render_sweep_report(manifest, small_sweep.to_dict())
        assert "fp32" in rendered and "int8" in rendered
        assert "exact across all points" in rendered
