"""Experiment drivers: every paper artifact regenerates and shows the
paper's qualitative findings.

These are the repository's headline integration tests.  They run the
actual experiment code paths at reduced item counts against the cached
trained model.
"""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    edge_vs_middle_gap,
    matched_layer_count,
    measured_speedup,
    per_point_slopes,
    rank_variation,
    run_accuracy_tradeoff,
    run_efficiency_tradeoff,
    run_experiment,
    run_layer_distance,
    run_layer_sensitivity,
    run_rank_sweep,
    run_single_tensor_sensitivity,
    run_tensor_vs_layer_tradeoff,
    scale_rank,
)
from repro.errors import ConfigError

LIMIT = 30  # items per benchmark for the fast integration checks


class TestRegistry:
    def test_all_artifacts_registered(self):
        for artifact in (
            "table1", "table2", "table3", "table4",
            "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        ):
            assert artifact in EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            run_experiment("fig99")

    def test_table_experiments_render(self):
        for table in ("table1", "table2", "table3", "table4"):
            text = run_experiment(table)
            assert len(text.splitlines()) >= 3


class TestScaleRank:
    def test_paper_ranks_map_to_tiny(self):
        assert scale_rank(1, 64) == 1
        assert scale_rank(250, 64) == 4
        assert scale_rank(500, 64) == 8

    def test_identity_at_paper_dim(self):
        assert scale_rank(250, 4096) == 250


class TestFig3RankSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return run_rank_sweep(reduction_targets=(9, 21), limit=LIMIT)

    def test_grid_complete(self, points):
        assert len(points) == 2 * 3  # two layer sets x three ranks

    def test_rank_has_minimal_accuracy_impact(self, points):
        """The paper's Fig 3 finding: accuracy varies little across ranks
        (they report ~1.5% average variation; we allow some slack at our
        reduced eval sizes)."""
        variation = rank_variation(points)
        assert np.mean(list(variation.values())) < 0.12

    def test_rank1_maximizes_reduction(self, points):
        by_set = {}
        for point in points:
            by_set.setdefault(point.layer_set, []).append(point)
        for group in by_set.values():
            best = min(group, key=lambda p: p.rank)
            assert best.actual_reduction == max(p.actual_reduction for p in group)


class TestFig5TensorSensitivity:
    def test_every_role_covered(self):
        points = run_single_tensor_sensitivity(scope="one_layer", limit=20)
        assert {p.roles[0] for p in points} == set(
            ("w_q", "w_k", "w_v", "w_so", "w_g", "w_u", "w_d")
        )

    def test_single_role_single_layer_is_mild(self, trained_llama):
        """Decomposing one tensor in one middle layer barely moves accuracy."""
        from repro.eval import build_suite, evaluate_suite
        from repro.experiments import get_world

        model, tokenizer = trained_llama
        suite = build_suite(get_world(), names=("arc_easy",))
        baseline = evaluate_suite(model, tokenizer, suite, limit=40).mean_accuracy
        points = run_single_tensor_sensitivity(scope="one_layer", limit=40,
                                               benchmarks=("arc_easy",))
        for point in points:
            assert point.accuracy["arc_easy"] > baseline - 0.25


class TestFig6TensorVsLayer:
    @pytest.fixture(scope="class")
    def points(self):
        return run_tensor_vs_layer_tradeoff(limit=LIMIT)

    def test_all_tensors_few_layers_wins(self, points):
        """The paper's key Figure 6 insight: at matched parameter reduction,
        decomposing all tensors in few layers beats decomposing one tensor
        in all layers."""
        *single_role, matched = points
        assert matched.label.startswith("all tensors")
        best_single = max(p.mean_accuracy for p in single_role)
        assert matched.mean_accuracy > best_single

    def test_reductions_comparable(self, points):
        *single_role, matched = points
        mean_single = np.mean([p.actual_reduction for p in single_role])
        assert matched.actual_reduction >= mean_single - 0.02

    def test_matched_layer_count_monotone(self, trained_llama):
        model, _ = trained_llama
        config = model.config
        low = matched_layer_count(config, 0.05)
        high = matched_layer_count(config, 0.30)
        assert low <= high


class TestFig7LayerSensitivity:
    @pytest.fixture(scope="class")
    def points(self):
        return run_layer_sensitivity(limit=LIMIT)

    def test_all_layers_covered(self, points, trained_llama):
        model, _ = trained_llama
        assert {p.layer for p in points} == set(range(model.config.n_layers))

    def test_first_layer_most_sensitive(self, points):
        """Section 3.3.3: the first layers are more sensitive."""
        by_layer = {p.layer: p.mean_accuracy for p in points}
        middle = [by_layer[l] for l in range(2, len(by_layer) - 1)]
        assert by_layer[0] < min(middle)

    def test_edge_vs_middle_gap_positive(self, points):
        assert edge_vs_middle_gap(points) > 0.0

    def test_single_layer_reductions_equal(self, points):
        reductions = {round(p.actual_reduction, 6) for p in points}
        assert len(reductions) == 1


class TestFig8LayerDistance:
    def test_spread_beats_consecutive(self):
        """Figure 8: spreading decomposed layers apart preserves accuracy
        better than decomposing consecutive layers — for every benchmark
        *except TruthfulQA*, exactly the exception the paper calls out
        (a more-broken model drifts toward chance, which raises the
        below-chance TruthfulQA score)."""
        points = run_layer_distance(n_decomposed=4, strides=(1, 3), limit=50)
        consecutive = next(p for p in points if p.stride == 1)
        spread = next(p for p in points if p.stride == 3)

        def mean_without_truthfulqa(point):
            values = [v for k, v in point.accuracy.items() if k != "truthfulqa"]
            return float(np.mean(values))

        assert mean_without_truthfulqa(spread) > mean_without_truthfulqa(consecutive)

    def test_reductions_matched_across_strides(self):
        points = run_layer_distance(n_decomposed=3, strides=(1, 2, 3), limit=10)
        reductions = {round(p.actual_reduction, 6) for p in points}
        assert len(reductions) == 1


class TestFig9AccuracyTradeoff:
    @pytest.fixture(scope="class")
    def points(self):
        return run_accuracy_tradeoff(
            reduction_targets=(6, 9, 21, 48, 96), limit=LIMIT
        )

    def test_baseline_first(self, points):
        assert points[0].target_reduction_pct == 0
        assert points[0].actual_reduction == 0.0

    def test_modest_reduction_keeps_most_accuracy(self, points):
        """The paper's headline: ~9% size reduction with bounded accuracy
        loss (4-10 %p band per benchmark; we check the aggregate)."""
        baseline = points[0].mean_accuracy
        modest = next(p for p in points if p.target_reduction_pct == 9)
        assert modest.mean_accuracy > baseline - 0.15

    def test_aggressive_reduction_destroys_accuracy(self, points):
        baseline = points[0].mean_accuracy
        extreme = next(p for p in points if p.target_reduction_pct == 96)
        assert extreme.mean_accuracy < baseline - 0.2

    def test_easy_degrades_less_than_hard_at_modest_reduction(self, points):
        """Figure 9: easy benchmarks (ARC-Easy) lose less than hard ones
        (MMLU/GSM8K) at modest reductions."""
        baseline = points[0]
        modest = next(p for p in points if p.target_reduction_pct == 9)
        easy_drop = baseline.accuracy["arc_easy"] - modest.accuracy["arc_easy"]
        hard_drop = baseline.accuracy["gsm8k"] - modest.accuracy["gsm8k"]
        assert easy_drop <= hard_drop + 0.15


class TestFig10to12Efficiency:
    @pytest.fixture(scope="class")
    def points(self):
        return run_efficiency_tradeoff()

    def test_all_targets_present(self, points):
        assert [p.target_reduction_pct for p in points] == [6, 9, 15, 21, 33, 48, 60, 75, 84, 96]

    def test_paper_slopes(self, points):
        slopes = per_point_slopes(points)
        assert 0.35 <= slopes["latency_saving"] <= 0.65
        assert slopes["energy_saving"] == pytest.approx(slopes["latency_saving"], abs=1e-6)
        assert 0.25 <= slopes["memory_saving"] <= 0.55

    def test_linear_scaling(self, points):
        """Section 4.4: latency and energy scale linearly with model size."""
        reductions = np.array([p.actual_reduction for p in points])
        latencies = np.array([p.latency_s for p in points])
        correlation = np.corrcoef(reductions, latencies)[0, 1]
        assert correlation < -0.99

    def test_speedups_monotone(self, points):
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups)


class TestMeasuredSpeedup:
    def test_real_wall_clock_speedup(self):
        """Decomposed tiny model must actually run faster under NumPy."""
        result = measured_speedup(reduction_target=96, batch=4, seq_len=32, repeats=3)
        assert result["speedup"] > 1.0
        assert result["parameter_reduction"] > 0.5
