"""The markdown report generator."""

from pathlib import Path

import pytest

from repro.experiments.report import DEFAULT_ARTIFACTS, generate_report


class TestGenerateReport:
    def test_tables_only_report(self, tmp_path):
        path = tmp_path / "RESULTS.md"
        report = generate_report(
            artifacts=("table1", "table2", "table4"), path=path
        )
        assert path.exists()
        assert path.read_text() == report
        assert "Table 1" in report
        assert "O(2^37)" in report
        assert report.count("```") == 6

    def test_accuracy_artifact_respects_limit(self, trained_llama):
        report = generate_report(artifacts=("fig7",), limit=10)
        assert "aggregate accuracy" in report

    def test_default_artifacts_registered(self):
        from repro.experiments.registry import EXPERIMENTS

        for artifact in DEFAULT_ARTIFACTS:
            assert artifact in EXPERIMENTS

    def test_creates_parent_directory(self, tmp_path):
        path = tmp_path / "deep" / "RESULTS.md"
        generate_report(artifacts=("table2",), path=path)
        assert path.exists()
