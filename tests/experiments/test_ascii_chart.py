"""ASCII chart rendering."""

import pytest

from repro.errors import ConfigError
from repro.experiments.ascii_chart import bar_chart, scatter_series, sparkline


class TestBarChart:
    def test_renders_rows(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert "#" in lines[1]

    def test_longest_bar_for_max_value(self):
        text = bar_chart(["x", "y"], [5.0, 10.0], width=10)
        rows = text.splitlines()
        assert rows[1].count("#") == 10
        assert rows[0].count("#") == 5

    def test_explicit_max(self):
        text = bar_chart(["x"], [5.0], width=10, max_value=10.0)
        assert text.count("#") == 5

    def test_negative_clamped(self):
        text = bar_chart(["x"], [-2.0], width=10)
        assert "#" not in text

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ConfigError):
            bar_chart([], [])


class TestScatterSeries:
    def test_renders_grid(self):
        text = scatter_series([0, 1, 2], {"acc": [0.2, 0.5, 0.9]}, height=6, width=20)
        assert "A" in text
        assert "acc" in text

    def test_two_series_distinct_markers(self):
        text = scatter_series(
            [0, 1], {"alpha": [0.0, 1.0], "apple": [1.0, 0.0]}, height=5, width=10
        )
        assert "A=alpha" in text and "B=apple" in text

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            scatter_series([0, 1], {"a": [1.0]})

    def test_constant_series_ok(self):
        text = scatter_series([0, 1], {"flat": [0.5, 0.5]})
        assert "F" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            scatter_series([0], {})


class TestSparkline:
    def test_monotone_values(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "@"

    def test_constant(self):
        assert sparkline([1.0, 1.0]) == "@@"

    def test_empty(self):
        with pytest.raises(ConfigError):
            sparkline([])
