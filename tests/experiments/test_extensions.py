"""Extension experiments: fine-tuning recovery, BERT sensitivity,
Definition 1 on the real model, and the CP-vs-Tucker ablation."""

import numpy as np
import pytest

from repro.decomposition import (
    DecompositionConfig,
    cp_matrix,
    cp_parameters,
    decomposed,
    design_goal_search,
    factorized_parameters,
    relative_error,
    scaled_table4,
    tucker2,
)
from repro.experiments.bert_sensitivity import (
    format_bert_sensitivity,
    run_bert_tensor_sensitivity,
)
from repro.experiments.finetune import format_finetune_recovery, run_finetune_recovery


class TestFinetuneRecovery:
    @pytest.fixture(scope="class")
    def result(self):
        return run_finetune_recovery(
            reduction_target=15, reference_target=9, steps=60, limit=30
        )

    def test_finetuning_recovers_accuracy(self, result):
        """Section 6: fine-tuning claws back accuracy of the compressed
        model (the paper recovers a 15% model to a 9% model's level)."""
        assert result.mean_finetuned > result.mean_decomposed

    def test_reaches_reference_band(self, result):
        """Fine-tuned 15%-recipe should approach the untouched 9%-recipe."""
        assert result.mean_finetuned > result.mean_reference - 0.12

    def test_report_renders(self, result):
        text = format_finetune_recovery(result)
        assert "fine-tuned" in text and "mean" in text

    def test_actual_reduction_recorded(self, result):
        assert 0.10 < result.actual_reduction < 0.60


class TestBertSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return run_bert_tensor_sensitivity(n_sentences=96)

    def test_baseline_well_above_chance(self, result):
        assert result["baseline"] > 0.3

    def test_every_role_measured(self, result):
        roles = {p.role for p in result["points"]}
        assert roles == {"w_q", "w_k", "w_v", "w_so", "w_int", "w_out"}

    def test_decomposition_hurts_mlm(self, result):
        for point in result["points"]:
            assert point.mlm_accuracy <= result["baseline"] + 0.05

    def test_mlp_group_at_least_as_sensitive_as_attention(self, result):
        """The paper: W_Int (an MLP tensor) is BERT's most sensitive role."""
        by_role = {p.role: p.mlm_accuracy for p in result["points"]}
        mlp_worst = min(by_role["w_int"], by_role["w_out"])
        attn_best = max(by_role[r] for r in ("w_q", "w_k", "w_v", "w_so"))
        assert mlp_worst <= attn_best + 0.05

    def test_report_renders(self, result):
        assert "baseline" in format_bert_sensitivity(result)


class TestDesignGoalOnRealModel:
    def test_definition1_end_to_end(self, trained_llama):
        """Run Definition 1 with live accuracy evaluation on the tiny model
        and the analytic hardware profile of its own configuration."""
        from repro.eval import build_suite, evaluate_suite
        from repro.experiments import get_world

        model, tokenizer = trained_llama
        suite = build_suite(get_world(), names=("arc_easy", "winogrande"))
        recipes = scaled_table4(model.config.n_layers)
        candidates = [DecompositionConfig.identity()] + [
            DecompositionConfig.all_tensors(model.config, recipes[t], rank=1)
            for t in (9, 21, 96)
        ]

        def accuracy_fn(config):
            if config.is_identity:
                return evaluate_suite(model, tokenizer, suite, limit=25).mean_accuracy
            with decomposed(model, config):
                return evaluate_suite(model, tokenizer, suite, limit=25).mean_accuracy

        baseline = accuracy_fn(DecompositionConfig.identity())
        result = design_goal_search(
            model.config, candidates, accuracy_fn, baseline, tolerance=0.25
        )
        assert result.satisfied
        # The 96% recipe destroys accuracy and must be infeasible.
        assert all(len(o.config.layers) < 12 for o in result.feasible)
        # The winner satisfies the Definition 1 constraint.
        assert result.best.accuracy_drop(baseline) < 0.25
        # Note: on a dim-64 model the analytic profiler can rank the
        # *identity* as the EDP winner — at this width, kernel-launch
        # overhead of the 3-GEMM factorized chain outweighs the FLOP
        # savings.  That is a real effect (the same one that caps the
        # paper's measured savings at ~0.5%/1%), so we do not require a
        # compressed winner here; the paper-scale profile (Fig 10 bench)
        # shows compressed configs winning.
        assert result.best.energy_delay_product <= min(
            o.energy_delay_product for o in result.feasible
        )


class TestCPvsTuckerAblation:
    def test_matched_parameter_budget_comparison(self, trained_llama):
        """On a *trained* weight matrix, compare reconstruction error of
        Tucker-2 and CP at (approximately) matched parameter budgets.  For
        matrices both reduce to truncated SVD subspaces, so CP's lack of a
        core lets it afford an equal or higher rank — its error is never
        worse at the same budget."""
        model, _ = trained_llama
        owner, attr = model.tensor_slot(5, "w_d")
        weight = getattr(owner, attr).weight.data  # (176, 64) trained matrix
        h, w = weight.shape

        for tucker_rank in (1, 4, 8):
            budget = factorized_parameters(h, w, tucker_rank)
            cp_rank = max(1, budget // (h + w + 1))
            assert cp_parameters((h, w), cp_rank) <= budget + (h + w + 1)

            u1, core, u2 = tucker2(weight, tucker_rank, method="svd")
            tucker_error = relative_error(weight, u1 @ core @ u2)
            a, s, b = cp_matrix(weight, cp_rank)
            cp_error = relative_error(weight, a @ np.diag(s) @ b.T)
            assert cp_error <= tucker_error + 1e-9
