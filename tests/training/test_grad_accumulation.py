"""Gradient accumulation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.training import TrainConfig, train_causal_lm


class TestGradAccumulation:
    def test_invalid_accumulation_rejected(self):
        with pytest.raises(ConfigError):
            TrainConfig(grad_accumulation=0)

    def test_training_runs_and_converges(self, micro_llama, tokenizer, corpus):
        config = TrainConfig(
            steps=20, batch_size=8, grad_accumulation=4, lr=3e-3, warmup_steps=2
        )
        log = train_causal_lm(micro_llama, tokenizer, corpus[:200], config)
        assert len(log.losses) == 20
        assert np.mean(log.losses[-5:]) < np.mean(log.losses[:5])

    def test_accumulated_loss_comparable_to_big_batch(
        self, micro_llama_config, tokenizer, corpus
    ):
        """4x8 accumulated micro-batches should train about as well as one
        batch of 32 (identical expected gradient)."""
        from repro.models import build_model

        results = []
        for batch_size, accumulation in ((32, 1), (8, 4)):
            model = build_model(micro_llama_config, rng=np.random.default_rng(0))
            config = TrainConfig(
                steps=30, batch_size=batch_size, grad_accumulation=accumulation,
                lr=3e-3, warmup_steps=3, seed=9,
            )
            log = train_causal_lm(model, tokenizer, corpus[:300], config)
            results.append(log.smoothed_final_loss(10))
        assert results[1] == pytest.approx(results[0], abs=0.5)
