"""Optimizers: analytic single steps and convergence on a quadratic."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.tensor import Tensor
from repro.training import SGD, Adam, AdamW


def _quadratic_param(start=5.0):
    return Parameter(np.array([start], dtype=np.float32))


def _step_quadratic(optimizer, param, n_steps):
    for _ in range(n_steps):
        optimizer.zero_grad()
        loss = (param * param).sum()
        loss.backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_single_step_matches_formula(self):
        param = _quadratic_param(2.0)
        optimizer = SGD([param], lr=0.1)
        _step_quadratic(optimizer, param, 1)
        # grad of x^2 at 2 is 4 -> x = 2 - 0.1*4 = 1.6
        assert param.data[0] == pytest.approx(1.6, abs=1e-6)

    def test_converges_on_quadratic(self):
        param = _quadratic_param()
        assert abs(_step_quadratic(SGD([param], lr=0.1), param, 100)) < 1e-4

    def test_momentum_accelerates(self):
        plain, heavy = _quadratic_param(), _quadratic_param()
        after_plain = abs(_step_quadratic(SGD([plain], lr=0.01), plain, 20))
        after_momentum = abs(
            _step_quadratic(SGD([heavy], lr=0.01, momentum=0.9), heavy, 20)
        )
        assert after_momentum < after_plain

    def test_invalid_momentum(self):
        with pytest.raises(ConfigError):
            SGD([_quadratic_param()], lr=0.1, momentum=1.0)

    def test_skips_parameters_without_grad(self):
        param = _quadratic_param()
        optimizer = SGD([param], lr=0.1)
        optimizer.step()  # no backward called
        assert param.data[0] == 5.0


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, Adam's first step is ~lr * sign(grad)."""
        param = _quadratic_param(1.0)
        optimizer = Adam([param], lr=0.05)
        _step_quadratic(optimizer, param, 1)
        assert param.data[0] == pytest.approx(1.0 - 0.05, abs=1e-4)

    def test_converges_on_quadratic(self):
        param = _quadratic_param()
        assert abs(_step_quadratic(Adam([param], lr=0.3), param, 200)) < 1e-2

    def test_invalid_betas(self):
        with pytest.raises(ConfigError):
            Adam([_quadratic_param()], betas=(1.0, 0.999))

    def test_coupled_weight_decay_acts_through_gradient(self):
        """With zero loss gradient, coupled decay still moves the weight
        (it is folded into the gradient before the adaptive step)."""
        param = Parameter(np.array([3.0], dtype=np.float32))
        optimizer = Adam([param], lr=0.01, weight_decay=0.5)
        param.grad = np.zeros(1, dtype=np.float32)
        optimizer.step()
        assert 0 < param.data[0] < 3.0


class TestAdamW:
    def test_decay_shrinks_weights_even_without_loss_gradient(self):
        param = Parameter(np.array([3.0], dtype=np.float32))
        optimizer = AdamW([param], lr=0.1, weight_decay=0.5)
        # Provide a zero gradient so only the decoupled decay acts.
        param.grad = np.zeros(1, dtype=np.float32)
        optimizer.step()
        assert 0 < param.data[0] < 3.0

    def test_converges(self):
        param = _quadratic_param()
        assert abs(_step_quadratic(AdamW([param], lr=0.3), param, 200)) < 5e-2


class TestOptimizerBase:
    def test_no_parameters_rejected(self):
        with pytest.raises(ConfigError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ConfigError):
            SGD([_quadratic_param()], lr=0.0)

    def test_clip_grad_norm_scales(self):
        param = Parameter(np.array([3.0, 4.0], dtype=np.float32))
        param.grad = np.array([3.0, 4.0], dtype=np.float32)
        optimizer = SGD([param], lr=0.1)
        norm = optimizer.clip_grad_norm(1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, abs=1e-5)

    def test_clip_noop_below_threshold(self):
        param = Parameter(np.array([0.3], dtype=np.float32))
        param.grad = np.array([0.3], dtype=np.float32)
        SGD([param], lr=0.1).clip_grad_norm(10.0)
        assert param.grad[0] == pytest.approx(0.3)

    def test_zero_grad(self):
        param = _quadratic_param()
        param.grad = np.ones(1, dtype=np.float32)
        SGD([param], lr=0.1).zero_grad()
        assert param.grad is None
