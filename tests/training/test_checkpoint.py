"""Checkpoint round trips."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.models import build_model
from repro.training import load_checkpoint, save_checkpoint


class TestCheckpoint:
    def test_round_trip_weights(self, tmp_path, micro_llama, tokenizer):
        path = tmp_path / "model.npz"
        save_checkpoint(path, micro_llama, tokenizer)
        restored, restored_tok = load_checkpoint(path)
        tokens = np.random.default_rng(0).integers(1, tokenizer.vocab_size, size=(2, 6))
        assert np.allclose(
            restored(tokens).data, micro_llama(tokens).data, atol=1e-6
        )
        assert restored_tok.state() == tokenizer.state()

    def test_round_trip_config(self, tmp_path, micro_llama, micro_llama_config):
        path = tmp_path / "model.npz"
        save_checkpoint(path, micro_llama)
        restored, tok = load_checkpoint(path)
        assert restored.config == micro_llama_config
        assert tok is None

    def test_bert_round_trip(self, tmp_path, micro_bert, tokenizer):
        path = tmp_path / "bert.npz"
        save_checkpoint(path, micro_bert, tokenizer)
        restored, _ = load_checkpoint(path)
        tokens = np.random.default_rng(1).integers(1, tokenizer.vocab_size, size=(1, 5))
        assert np.allclose(restored(tokens).data, micro_bert(tokens).data, atol=1e-6)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_non_checkpoint_npz_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_creates_parent_directories(self, tmp_path, micro_llama):
        path = tmp_path / "deep" / "nested" / "model.npz"
        save_checkpoint(path, micro_llama)
        assert path.exists()
