"""Checkpoint round trips."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.models import build_model
from repro.training import load_checkpoint, save_checkpoint


class TestCheckpoint:
    def test_round_trip_weights(self, tmp_path, micro_llama, tokenizer):
        path = tmp_path / "model.npz"
        save_checkpoint(path, micro_llama, tokenizer)
        restored, restored_tok = load_checkpoint(path)
        tokens = np.random.default_rng(0).integers(1, tokenizer.vocab_size, size=(2, 6))
        assert np.allclose(
            restored(tokens).data, micro_llama(tokens).data, atol=1e-6
        )
        assert restored_tok.state() == tokenizer.state()

    def test_round_trip_config(self, tmp_path, micro_llama, micro_llama_config):
        path = tmp_path / "model.npz"
        save_checkpoint(path, micro_llama)
        restored, tok = load_checkpoint(path)
        assert restored.config == micro_llama_config
        assert tok is None

    def test_bert_round_trip(self, tmp_path, micro_bert, tokenizer):
        path = tmp_path / "bert.npz"
        save_checkpoint(path, micro_bert, tokenizer)
        restored, _ = load_checkpoint(path)
        tokens = np.random.default_rng(1).integers(1, tokenizer.vocab_size, size=(1, 5))
        assert np.allclose(restored(tokens).data, micro_bert(tokens).data, atol=1e-6)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_non_checkpoint_npz_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_creates_parent_directories(self, tmp_path, micro_llama):
        path = tmp_path / "deep" / "nested" / "model.npz"
        save_checkpoint(path, micro_llama)
        assert path.exists()


class TestCorruptionRobustness:
    def test_truncated_file_raises_checkpoint_error(self, tmp_path, micro_llama):
        """A partially written npz must surface as CheckpointError, not
        zipfile.BadZipFile (the failure mode of a killed training run)."""
        path = tmp_path / "model.npz"
        save_checkpoint(path, micro_llama)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_garbage_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "model.npz"
        path.write_bytes(b"this was never an npz archive")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_save_leaves_no_temp_files(self, tmp_path, micro_llama):
        path = tmp_path / "model.npz"
        save_checkpoint(path, micro_llama)
        save_checkpoint(path, micro_llama)  # overwrite goes through rename too
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]

    def test_failed_save_preserves_existing_checkpoint(self, tmp_path, micro_llama):
        """The write-then-rename protocol must never clobber a good file."""
        path = tmp_path / "model.npz"
        save_checkpoint(path, micro_llama)
        good = path.read_bytes()

        class Boom:
            def __array__(self, dtype=None):
                raise RuntimeError("boom mid-serialization")

        class Unserializable:
            def state_dict(self):
                return {"weight": Boom()}

            config = micro_llama.config

        with pytest.raises(RuntimeError):
            save_checkpoint(path, Unserializable())
        assert path.read_bytes() == good
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]


class TestCorruptCacheRecovery:
    def test_load_cached_deletes_corrupt_and_returns_none(self, tmp_path, tokenizer):
        from repro.experiments.pretrained import _load_cached

        path = tmp_path / "tiny-llama-v99.npz"
        path.write_bytes(b"truncated garbage")
        assert _load_cached(path, tokenizer) is None
        assert not path.exists()

    def test_load_cached_rejects_stale_tokenizer(self, tmp_path, micro_llama, tokenizer):
        from repro.experiments.pretrained import _load_cached

        path = tmp_path / "model.npz"
        save_checkpoint(path, micro_llama)  # saved without a tokenizer
        assert _load_cached(path, tokenizer) is None
        assert path.exists()  # intact files are kept

    def test_load_cached_returns_model_in_eval_mode(
        self, tmp_path, micro_llama, tokenizer
    ):
        from repro.experiments.pretrained import _load_cached

        path = tmp_path / "model.npz"
        save_checkpoint(path, micro_llama, tokenizer)
        model = _load_cached(path, tokenizer)
        assert model is not None
        assert not model.training
