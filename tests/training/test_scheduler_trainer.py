"""LR schedules, the trainers, and MLM masking."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.training import (
    ConstantLR,
    SGD,
    TrainConfig,
    WarmupCosine,
    mask_tokens,
    train_causal_lm,
    train_masked_lm,
)


def _optimizer(lr=1.0):
    return SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=lr)


class TestSchedulers:
    def test_constant(self):
        scheduler = ConstantLR(_optimizer(0.5))
        assert scheduler.step() == 0.5
        assert scheduler.step() == 0.5

    def test_warmup_ramps_linearly(self):
        scheduler = WarmupCosine(_optimizer(1.0), warmup_steps=10, total_steps=100)
        lrs = [scheduler.step() for _ in range(10)]
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[-1] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(lrs, lrs[1:]))

    def test_cosine_decays_to_min(self):
        scheduler = WarmupCosine(
            _optimizer(1.0), warmup_steps=0, total_steps=50, min_lr=0.1
        )
        for _ in range(50):
            last = scheduler.step()
        assert last == pytest.approx(0.1, abs=1e-6)

    def test_updates_optimizer_lr(self):
        optimizer = _optimizer(1.0)
        scheduler = WarmupCosine(optimizer, warmup_steps=2, total_steps=10)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.5)

    def test_warmup_longer_than_total_rejected(self):
        with pytest.raises(ConfigError):
            WarmupCosine(_optimizer(), warmup_steps=10, total_steps=10)


class TestCausalTrainer:
    def test_loss_decreases(self, micro_llama, tokenizer, corpus):
        config = TrainConfig(steps=25, batch_size=16, lr=3e-3, warmup_steps=2)
        log = train_causal_lm(micro_llama, tokenizer, corpus[:300], config)
        first = np.mean(log.losses[:5])
        last = np.mean(log.losses[-5:])
        assert last < first
        assert log.steps == 25
        assert log.seconds > 0

    def test_model_left_in_eval_mode(self, micro_llama, tokenizer, corpus):
        config = TrainConfig(steps=2, batch_size=4, warmup_steps=1)
        train_causal_lm(micro_llama, tokenizer, corpus[:50], config)
        assert not micro_llama.training

    def test_deterministic_given_seed(self, micro_llama_config, tokenizer, corpus):
        from repro.models import build_model

        losses = []
        for _ in range(2):
            model = build_model(micro_llama_config, rng=np.random.default_rng(0))
            config = TrainConfig(steps=5, batch_size=8, warmup_steps=1, seed=3)
            log = train_causal_lm(model, tokenizer, corpus[:100], config)
            losses.append(log.losses)
        assert losses[0] == losses[1]

    def test_empty_corpus_rejected(self, micro_llama, tokenizer):
        with pytest.raises(ConfigError):
            train_causal_lm(micro_llama, tokenizer, [], TrainConfig(steps=1, warmup_steps=0))

    def test_final_loss_accessors(self, micro_llama, tokenizer, corpus):
        config = TrainConfig(steps=3, batch_size=4, warmup_steps=1)
        log = train_causal_lm(micro_llama, tokenizer, corpus[:50], config)
        assert log.final_loss == log.losses[-1]
        assert np.isfinite(log.smoothed_final_loss())


class TestMaskedTrainer:
    def test_loss_decreases(self, micro_bert, tokenizer, corpus):
        config = TrainConfig(steps=25, batch_size=16, lr=3e-3, warmup_steps=2)
        log = train_masked_lm(micro_bert, tokenizer, corpus[:300], config)
        assert np.mean(log.losses[-5:]) < np.mean(log.losses[:5])

    def test_invalid_mask_prob(self, micro_bert, tokenizer, corpus):
        with pytest.raises(ConfigError):
            train_masked_lm(
                micro_bert, tokenizer, corpus[:10],
                TrainConfig(steps=1, warmup_steps=0), mask_prob=0.0,
            )


class TestMaskTokens:
    def test_masked_positions_have_targets(self, tokenizer):
        rng = np.random.default_rng(0)
        ids = rng.integers(5, 50, size=(4, 10))
        real = np.ones_like(ids, dtype=bool)
        corrupted, targets = mask_tokens(ids, real, tokenizer, rng, mask_prob=0.3)
        masked = corrupted == tokenizer.mask_id
        assert masked.any()
        assert np.array_equal(targets[masked], ids[masked])
        assert np.all(targets[~masked] == -1)

    def test_bos_never_masked(self, tokenizer):
        rng = np.random.default_rng(1)
        ids = np.full((2, 6), 7, dtype=np.int64)
        real = np.ones_like(ids, dtype=bool)
        corrupted, _ = mask_tokens(ids, real, tokenizer, rng, mask_prob=0.99)
        assert np.all(corrupted[:, 0] == 7)

    def test_at_least_one_mask_guaranteed(self, tokenizer):
        rng = np.random.default_rng(2)
        ids = np.full((1, 4), 9, dtype=np.int64)
        real = np.ones_like(ids, dtype=bool)
        corrupted, _ = mask_tokens(ids, real, tokenizer, rng, mask_prob=1e-9)
        assert (corrupted == tokenizer.mask_id).sum() >= 1

    def test_padding_never_masked(self, tokenizer):
        rng = np.random.default_rng(3)
        ids = np.full((1, 6), 9, dtype=np.int64)
        real = np.ones_like(ids, dtype=bool)
        real[0, 3:] = False
        corrupted, _ = mask_tokens(ids, real, tokenizer, rng, mask_prob=0.99)
        assert np.all(corrupted[0, 3:] == 9)
