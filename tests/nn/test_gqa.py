"""Grouped-query attention (Llama-2-70B style)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.errors import ShapeError
from repro.models import build_model, get_config
from repro.models.params import total_parameters
from repro.nn import MultiHeadAttention, RotaryEmbedding
from repro.tensor import Tensor


class TestGQAAttention:
    def test_kv_projections_are_narrower(self):
        attn = MultiHeadAttention(16, 4, causal=True, n_kv_heads=2,
                                  rng=np.random.default_rng(0))
        assert attn.w_q.out_features == 16
        assert attn.w_k.out_features == 8
        assert attn.w_v.out_features == 8

    def test_forward_shape(self):
        rope = RotaryEmbedding(4, 16)
        attn = MultiHeadAttention(16, 4, causal=True, rope=rope, n_kv_heads=2,
                                  rng=np.random.default_rng(1))
        x = Tensor(np.random.default_rng(2).normal(size=(2, 6, 16)).astype(np.float32))
        assert attn(x).shape == (2, 6, 16)

    def test_indivisible_kv_heads_rejected(self):
        with pytest.raises(ShapeError):
            MultiHeadAttention(16, 4, causal=True, n_kv_heads=3)

    def test_gqa_equals_mha_when_kv_heads_match(self):
        rng = np.random.default_rng(3)
        full = MultiHeadAttention(8, 2, causal=True, rng=np.random.default_rng(5))
        gqa = MultiHeadAttention(8, 2, causal=True, n_kv_heads=2,
                                 rng=np.random.default_rng(5))
        x = Tensor(rng.normal(size=(1, 4, 8)).astype(np.float32))
        assert np.allclose(full(x).data, gqa(x).data, atol=1e-6)

    def test_gradients_flow_through_shared_kv(self):
        attn = MultiHeadAttention(16, 4, causal=True, n_kv_heads=1,
                                  rng=np.random.default_rng(4))
        x = Tensor(np.random.default_rng(5).normal(size=(1, 5, 16)).astype(np.float32))
        attn(x).sum().backward()
        assert np.abs(attn.w_k.weight.grad).max() > 0
        assert attn.w_k.weight.grad.shape == (16, 4)

    def test_causality_preserved_under_gqa(self):
        attn = MultiHeadAttention(16, 4, causal=True, n_kv_heads=2,
                                  rng=np.random.default_rng(6))
        rng = np.random.default_rng(7)
        x = rng.normal(size=(1, 6, 16)).astype(np.float32)
        base = attn(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, 5] += 10.0
        out = attn(Tensor(perturbed)).data
        assert np.allclose(out[0, :5], base[0, :5], atol=1e-4)


class TestGQAModel:
    def test_live_model_matches_analytic_params(self):
        """A live GQA Llama must match the analytic parameter accounting
        used for Llama-2-70B shapes."""
        config = replace(
            get_config("tiny-llama").with_vocab(64),
            n_layers=2, n_heads=4, n_kv_heads=2,
        )
        model = build_model(config, rng=np.random.default_rng(0))
        assert model.num_parameters() == total_parameters(config)

    def test_gqa_model_forward(self):
        config = replace(
            get_config("tiny-llama").with_vocab(64),
            n_layers=2, n_heads=4, n_kv_heads=1,
        )
        model = build_model(config)
        tokens = np.random.default_rng(1).integers(0, 64, size=(2, 7))
        assert model(tokens).shape == (2, 7, 64)

    def test_gqa_kv_tensor_decomposable(self):
        from repro.decomposition import DecompositionConfig, decompose_model

        config = replace(
            get_config("tiny-llama").with_vocab(64),
            n_layers=2, n_heads=4, n_kv_heads=2,
        )
        model = build_model(config, rng=np.random.default_rng(2))
        gamma = DecompositionConfig.uniform([0], ["w_k"], rank=1)
        report = decompose_model(model, gamma)
        assert report.tensors[0].shape == (64, 32)
