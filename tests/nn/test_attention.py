"""Attention semantics: causality, padding, RoPE."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import MultiHeadAttention, RotaryEmbedding, causal_mask
from repro.tensor import Tensor


def _attn(causal, rope=None, dim=8, heads=2, seed=0, bias=False):
    rng = np.random.default_rng(seed)
    return MultiHeadAttention(dim, heads, causal=causal, rope=rope, bias=bias, rng=rng)


class TestCausalMask:
    def test_upper_triangle_true(self):
        mask = causal_mask(4)
        assert mask[0, 1] and mask[2, 3]
        assert not mask[1, 1] and not mask[3, 0]


class TestAttention:
    def test_output_shape(self):
        attn = _attn(causal=True)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5, 8)).astype(np.float32))
        assert attn(x).shape == (2, 5, 8)

    def test_causality_future_tokens_do_not_affect_past(self):
        attn = _attn(causal=True, seed=2)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 6, 8)).astype(np.float32)
        base = attn(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, 4:] += 10.0  # change only positions 4 and 5
        out = attn(Tensor(perturbed)).data
        assert np.allclose(out[0, :4], base[0, :4], atol=1e-4)
        assert not np.allclose(out[0, 4:], base[0, 4:], atol=1e-3)

    def test_bidirectional_sees_future(self):
        attn = _attn(causal=False, seed=4)
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 6, 8)).astype(np.float32)
        base = attn(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, 5] += 10.0
        out = attn(Tensor(perturbed)).data
        assert not np.allclose(out[0, 0], base[0, 0], atol=1e-3)

    def test_pad_mask_blocks_positions(self):
        attn = _attn(causal=False, seed=6)
        rng = np.random.default_rng(7)
        x = rng.normal(size=(1, 5, 8)).astype(np.float32)
        pad = np.zeros((1, 5), dtype=bool)
        pad[0, 4] = True
        base = attn(Tensor(x), pad_mask=pad).data.copy()
        perturbed = x.copy()
        perturbed[0, 4] += 100.0  # only the padded position changes
        out = attn(Tensor(perturbed), pad_mask=pad).data
        # Non-padded outputs must be unaffected by the padded token's content.
        assert np.allclose(out[0, :4], base[0, :4], atol=1e-4)

    def test_pad_mask_shape_validated(self):
        attn = _attn(causal=False)
        x = Tensor(np.zeros((2, 4, 8), dtype=np.float32))
        with pytest.raises(ShapeError):
            attn(x, pad_mask=np.zeros((2, 5), dtype=bool))

    def test_input_rank_validated(self):
        attn = _attn(causal=True)
        with pytest.raises(ShapeError):
            attn(Tensor(np.zeros((4, 8), dtype=np.float32)))

    def test_dim_head_divisibility(self):
        with pytest.raises(ShapeError):
            MultiHeadAttention(10, 3, causal=True)

    def test_gradients_reach_all_projections(self):
        attn = _attn(causal=True, seed=8)
        x = Tensor(np.random.default_rng(9).normal(size=(1, 4, 8)).astype(np.float32))
        attn(x).sum().backward()
        for proj in (attn.w_q, attn.w_k, attn.w_v, attn.w_so):
            assert proj.weight.grad is not None
            assert np.abs(proj.weight.grad).max() > 0


class TestRoPE:
    def test_preserves_norm(self):
        rope = RotaryEmbedding(8, 16)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 10, 8)).astype(np.float32))
        out = rope.apply(x)
        assert np.allclose(
            np.linalg.norm(out.data, axis=-1),
            np.linalg.norm(x.data, axis=-1),
            atol=1e-4,
        )

    def test_position_zero_is_identity(self):
        rope = RotaryEmbedding(8, 16)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 1, 3, 8)).astype(np.float32))
        out = rope.apply(x)
        assert np.allclose(out.data[0, 0, 0], x.data[0, 0, 0], atol=1e-5)
        assert not np.allclose(out.data[0, 0, 2], x.data[0, 0, 2], atol=1e-3)

    def test_relative_property(self):
        """Dot products of rotated q/k depend only on relative offset."""
        rope = RotaryEmbedding(8, 32)
        rng = np.random.default_rng(2)
        q = rng.normal(size=8).astype(np.float32)
        k = rng.normal(size=8).astype(np.float32)

        def rotated_dot(pos_q, pos_k):
            length = max(pos_q, pos_k) + 1
            buf_q = np.zeros((1, 1, length, 8), dtype=np.float32)
            buf_k = np.zeros((1, 1, length, 8), dtype=np.float32)
            buf_q[0, 0, pos_q] = q
            buf_k[0, 0, pos_k] = k
            rq = rope.apply(Tensor(buf_q)).data[0, 0, pos_q]
            rk = rope.apply(Tensor(buf_k)).data[0, 0, pos_k]
            return float(rq @ rk)

        assert rotated_dot(3, 1) == pytest.approx(rotated_dot(7, 5), abs=1e-4)
        assert rotated_dot(3, 1) != pytest.approx(rotated_dot(3, 2), abs=1e-4)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ShapeError):
            RotaryEmbedding(7, 16)

    def test_sequence_length_guard(self):
        rope = RotaryEmbedding(4, 8)
        x = Tensor(np.zeros((1, 1, 9, 4), dtype=np.float32))
        with pytest.raises(ShapeError):
            rope.apply(x)

    def test_gradient_flows(self):
        rope = RotaryEmbedding(4, 8)
        x = Tensor(np.random.default_rng(3).normal(size=(1, 1, 4, 4)).astype(np.float32),
                   requires_grad=True)
        rope.apply(x).sum().backward()
        assert x.grad is not None
        assert x.grad.shape == x.shape
