"""GELU and SwiGLU feed-forward blocks."""

import numpy as np

from repro.nn import GeluMLP, SwiGluMLP
from repro.tensor import Tensor


class TestGeluMLP:
    def test_shape(self):
        mlp = GeluMLP(8, 32, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5, 8)).astype(np.float32))
        assert mlp(x).shape == (2, 5, 8)

    def test_parameter_count(self):
        mlp = GeluMLP(8, 32)
        # w_int: 8*32 + 32 bias, w_out: 32*8 + 8 bias
        assert mlp.num_parameters() == 8 * 32 + 32 + 32 * 8 + 8

    def test_gradients_flow(self):
        mlp = GeluMLP(4, 8, rng=np.random.default_rng(2))
        x = Tensor(np.random.default_rng(3).normal(size=(3, 4)).astype(np.float32))
        mlp(x).sum().backward()
        assert mlp.w_int.weight.grad is not None
        assert mlp.w_out.weight.grad is not None


class TestSwiGluMLP:
    def test_shape(self):
        mlp = SwiGluMLP(8, 24, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5, 8)).astype(np.float32))
        assert mlp(x).shape == (2, 5, 8)

    def test_no_biases(self):
        mlp = SwiGluMLP(8, 24)
        assert mlp.w_g.bias is None and mlp.w_u.bias is None and mlp.w_d.bias is None
        assert mlp.num_parameters() == 3 * 8 * 24

    def test_gating_zero_input_gives_zero(self):
        mlp = SwiGluMLP(4, 8, rng=np.random.default_rng(2))
        out = mlp(Tensor(np.zeros((1, 4), dtype=np.float32)))
        assert np.allclose(out.data, 0.0, atol=1e-6)

    def test_gradients_reach_all_three_projections(self):
        mlp = SwiGluMLP(4, 8, rng=np.random.default_rng(3))
        x = Tensor(np.random.default_rng(4).normal(size=(3, 4)).astype(np.float32))
        mlp(x).sum().backward()
        for proj in (mlp.w_g, mlp.w_u, mlp.w_d):
            assert np.abs(proj.weight.grad).max() > 0
