"""Linear, FactorizedLinear, Embedding, and normalization modules."""

import numpy as np
import pytest

from repro.errors import DecompositionError, ShapeError
from repro.nn import (
    Embedding,
    FactorizedLinear,
    LayerNorm,
    Linear,
    PositionalEmbedding,
    RMSNorm,
)
from repro.tensor import Tensor


class TestLinear:
    def test_forward_matches_matmul(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 3, bias=True, rng=rng)
        layer.bias.data = rng.normal(size=3).astype(np.float32)
        x = rng.normal(size=(5, 4)).astype(np.float32)
        out = layer(Tensor(x)).data
        assert np.allclose(out, x @ layer.weight.data + layer.bias.data, atol=1e-5)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert layer.num_weight_parameters() == 12

    def test_zero_init_without_rng(self):
        layer = Linear(2, 2)
        assert np.all(layer.weight.data == 0.0)

    def test_batched_input(self):
        rng = np.random.default_rng(1)
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 7, 4)).astype(np.float32)))
        assert out.shape == (2, 7, 3)

    def test_gradients_flow_to_weight_and_bias(self):
        rng = np.random.default_rng(2)
        layer = Linear(3, 2, rng=rng)
        layer(Tensor(rng.normal(size=(4, 3)).astype(np.float32))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestFactorizedLinear:
    @staticmethod
    def _factors(h=6, w=8, r=2, seed=0):
        rng = np.random.default_rng(seed)
        return (
            rng.normal(size=(h, r)).astype(np.float32),
            rng.normal(size=(r, r)).astype(np.float32),
            rng.normal(size=(r, w)).astype(np.float32),
        )

    def test_forward_equals_dense_reconstruction(self):
        u1, core, u2 = self._factors()
        layer = FactorizedLinear(u1, core, u2)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 6)).astype(np.float32)
        assert np.allclose(layer(Tensor(x)).data, x @ layer.reconstruct(), atol=1e-4)

    def test_parameter_count_formula(self):
        u1, core, u2 = self._factors(10, 20, 3)
        layer = FactorizedLinear(u1, core, u2)
        assert layer.num_weight_parameters() == 10 * 3 + 3 * 3 + 3 * 20
        assert layer.dense_parameters() == 200

    def test_compression_ratio_formula(self):
        u1, core, u2 = self._factors(10, 20, 1)
        layer = FactorizedLinear(u1, core, u2)
        assert layer.compression_ratio() == pytest.approx(200 / 31)

    def test_bias_applied(self):
        u1, core, u2 = self._factors()
        bias = np.full(8, 2.0, dtype=np.float32)
        with_bias = FactorizedLinear(u1, core, u2, bias=bias)
        without = FactorizedLinear(u1, core, u2)
        x = Tensor(np.ones((1, 6), dtype=np.float32))
        assert np.allclose(with_bias(x).data - without(x).data, 2.0, atol=1e-5)

    def test_to_linear_round_trip(self):
        u1, core, u2 = self._factors()
        layer = FactorizedLinear(u1, core, u2, bias=np.ones(8, dtype=np.float32))
        dense = layer.to_linear()
        x = Tensor(np.random.default_rng(2).normal(size=(2, 6)).astype(np.float32))
        assert np.allclose(dense(x).data, layer(x).data, atol=1e-4)

    def test_chain_mismatch_rejected(self):
        u1, core, u2 = self._factors()
        with pytest.raises(DecompositionError):
            FactorizedLinear(u1, np.zeros((3, 3), dtype=np.float32), u2)

    def test_non_matrix_rejected(self):
        with pytest.raises(DecompositionError):
            FactorizedLinear(
                np.zeros(3, dtype=np.float32),
                np.zeros((1, 1), dtype=np.float32),
                np.zeros((1, 3), dtype=np.float32),
            )


class TestEmbedding:
    def test_lookup(self):
        table = Embedding(10, 4)
        table.weight.data = np.arange(40, dtype=np.float32).reshape(10, 4)
        out = table(np.array([[0, 2]]))
        assert np.allclose(out.data[0, 1], [8, 9, 10, 11])

    def test_gradient_scatter(self):
        table = Embedding(5, 2)
        table(np.array([[1, 1, 3]])).sum().backward()
        grad_rows = table.weight.grad.sum(axis=1)
        assert np.allclose(grad_rows, [0.0, 4.0, 0.0, 2.0, 0.0])

    def test_out_of_range_rejected(self):
        table = Embedding(5, 2)
        with pytest.raises(ShapeError):
            table(np.array([5]))
        with pytest.raises(ShapeError):
            table(np.array([-1]))

    def test_float_ids_rejected(self):
        table = Embedding(5, 2)
        with pytest.raises(ShapeError):
            table(np.array([1.0]))

    def test_positional_embedding_length_guard(self):
        pos = PositionalEmbedding(8, 4)
        assert pos(8).shape == (8, 4)
        with pytest.raises(ShapeError):
            pos(9)


class TestNormModules:
    def test_layer_norm_parameters(self):
        norm = LayerNorm(16)
        assert norm.num_parameters() == 32

    def test_rms_norm_parameters(self):
        norm = RMSNorm(16)
        assert norm.num_parameters() == 16

    def test_layer_norm_normalizes(self):
        norm = LayerNorm(32)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(4, 32)).astype(np.float32))
        out = norm(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)

    def test_rms_norm_unit_rms(self):
        norm = RMSNorm(32)
        x = Tensor(np.random.default_rng(1).normal(0.0, 5.0, size=(4, 32)).astype(np.float32))
        out = norm(x).data
        rms = np.sqrt((out**2).mean(axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-2)
