"""Module system: registration, state dicts, train/eval."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.nn import Linear, Module, ModuleList, Parameter
from repro.tensor import Tensor


class _Toy(Module):
    def __init__(self):
        super().__init__()
        self.scale = Parameter(np.ones(3, dtype=np.float32))
        self.inner = Linear(3, 2, bias=True)
        self.stack = ModuleList([Linear(2, 2, bias=False) for _ in range(2)])

    def forward(self, x):
        out = self.inner(x * self.scale)
        for layer in self.stack:
            out = layer(out)
        return out


class TestRegistration:
    def test_named_parameters_paths(self):
        names = {name for name, _ in _Toy().named_parameters()}
        assert names == {
            "scale",
            "inner.weight",
            "inner.bias",
            "stack.0.weight",
            "stack.1.weight",
        }

    def test_num_parameters(self):
        toy = _Toy()
        assert toy.num_parameters() == 3 + (3 * 2 + 2) + 2 * 4

    def test_named_modules_includes_list_children(self):
        names = {name for name, _ in _Toy().named_modules()}
        assert {"", "inner", "stack.0", "stack.1"} <= names

    def test_modulelist_len_and_indexing(self):
        stack = ModuleList([Linear(1, 1), Linear(1, 1)])
        assert len(stack) == 2
        stack[1] = Linear(1, 1, bias=False)
        assert stack[1].bias is None


class TestTrainEval:
    def test_eval_propagates(self):
        toy = _Toy()
        toy.eval()
        assert not toy.training
        assert not toy.inner.training
        assert not toy.stack[0].training

    def test_train_restores(self):
        toy = _Toy().eval()
        toy.train()
        assert toy.stack[1].training


class TestStateDict:
    def test_round_trip(self):
        a, b = _Toy(), _Toy()
        for param in a.parameters():
            param.data += 1.0
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        toy = _Toy()
        state = toy.state_dict()
        state["scale"][:] = 99.0
        assert not np.any(toy.scale.data == 99.0)

    def test_strict_missing_key_rejected(self):
        toy = _Toy()
        state = toy.state_dict()
        del state["scale"]
        with pytest.raises(CheckpointError):
            toy.load_state_dict(state)

    def test_non_strict_allows_partial(self):
        toy = _Toy()
        state = {"scale": np.full(3, 7.0, dtype=np.float32)}
        toy.load_state_dict(state, strict=False)
        assert np.allclose(toy.scale.data, 7.0)

    def test_shape_mismatch_rejected(self):
        toy = _Toy()
        state = toy.state_dict()
        state["scale"] = np.zeros(5, dtype=np.float32)
        with pytest.raises(CheckpointError):
            toy.load_state_dict(state)


class TestZeroGrad:
    def test_clears_all_gradients(self):
        toy = _Toy()
        out = toy(Tensor(np.ones((2, 3), dtype=np.float32)))
        out.sum().backward()
        assert toy.inner.weight.grad is not None
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())
