"""KV-cache incremental decoding: exact equivalence with full recompute."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    LayerKVCache,
    ModelKVCache,
    MultiHeadAttention,
    RaggedLayerCaches,
    RaggedModelCaches,
    RotaryEmbedding,
    causal_mask,
)
from repro.tensor import Tensor


class TestCausalMaskOffset:
    def test_zero_offset_is_classic_triangle(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert mask[0, 1] and not mask[3, 0]

    def test_offset_widens_keys(self):
        mask = causal_mask(2, offset=3)
        assert mask.shape == (2, 5)
        # Query at absolute position 3 sees keys 0..3.
        assert not mask[0, 3] and mask[0, 4]
        assert not mask[1, 4]


class TestLayerKVCache:
    def test_append_grows(self):
        cache = LayerKVCache()
        k = np.zeros((1, 2, 3, 4), dtype=np.float32)
        cache.append(k, k)
        assert cache.seq_len == 3
        cache.append(k[:, :, :1], k[:, :, :1])
        assert cache.seq_len == 4

    def test_returns_full_history(self):
        cache = LayerKVCache()
        first = np.ones((1, 1, 2, 2), dtype=np.float32)
        second = np.full((1, 1, 1, 2), 2.0, dtype=np.float32)
        cache.append(first, first)
        keys, _ = cache.append(second, second)
        assert keys.shape == (1, 1, 3, 2)
        assert keys[0, 0, 2, 0] == 2.0

    def test_shape_mismatch_rejected(self):
        cache = LayerKVCache()
        cache.append(np.zeros((1, 2, 1, 4)), np.zeros((1, 2, 1, 4)))
        with pytest.raises(ShapeError):
            cache.append(np.zeros((1, 3, 1, 4)), np.zeros((1, 3, 1, 4)))

    def test_capacity_grows_geometrically_not_per_append(self):
        cache = LayerKVCache()
        k = np.zeros((1, 2, 1, 4), dtype=np.float32)
        cache.append(k, k)
        first_capacity = cache.capacity
        assert first_capacity >= 16  # preallocated beyond the first token
        for _ in range(first_capacity - 1):
            cache.append(k, k)
        assert cache.capacity == first_capacity  # no growth while it fits
        cache.append(k, k)
        assert cache.capacity >= 2 * first_capacity  # doubled, not +1

    def test_append_returns_views_not_copies(self):
        cache = LayerKVCache()
        k = np.arange(8, dtype=np.float32).reshape(1, 2, 1, 4)
        keys, values = cache.append(k, k)
        assert keys.base is not None  # a view into the preallocated buffer
        np.testing.assert_array_equal(keys, k)
        np.testing.assert_array_equal(cache.keys, k)
        np.testing.assert_array_equal(cache.values, k)

    def test_empty_cache_exposes_none(self):
        cache = LayerKVCache()
        assert cache.seq_len == 0
        assert cache.keys is None
        assert cache.values is None

    def test_history_survives_buffer_growth(self):
        cache = LayerKVCache()
        rng = np.random.default_rng(6)
        chunks = [
            rng.normal(size=(1, 2, n, 4)).astype(np.float32) for n in (3, 30, 50)
        ]
        for chunk in chunks:
            keys, _ = cache.append(chunk, chunk)
        expected = np.concatenate(chunks, axis=2)
        np.testing.assert_array_equal(keys, expected)

    def test_batch_and_head_dim_mismatch_rejected(self):
        cache = LayerKVCache()
        cache.append(np.zeros((1, 2, 1, 4)), np.zeros((1, 2, 1, 4)))
        with pytest.raises(ShapeError):
            cache.append(np.zeros((2, 2, 1, 4)), np.zeros((2, 2, 1, 4)))
        with pytest.raises(ShapeError):
            cache.append(np.zeros((1, 2, 1, 8)), np.zeros((1, 2, 1, 8)))

    def test_model_cache_indexing(self):
        cache = ModelKVCache(3)
        assert len(cache) == 3
        assert cache.seq_len == 0
        with pytest.raises(ShapeError):
            ModelKVCache(0)


class TestRaggedWrappers:
    def test_layer_offsets_reflect_per_cache_depths(self):
        caches = [LayerKVCache(), LayerKVCache()]
        k = np.zeros((1, 2, 3, 4), dtype=np.float32)
        caches[0].append(k, k)
        ragged = RaggedLayerCaches(caches, np.array([2, 1]))
        assert len(ragged) == 2
        np.testing.assert_array_equal(ragged.offsets, [3, 0])
        np.testing.assert_array_equal(ragged.new_lengths, [2, 1])

    def test_model_wrapper_builds_layer_views(self):
        caches = [ModelKVCache(2), ModelKVCache(2)]
        ragged = RaggedModelCaches(caches, np.array([1, 1]))
        assert len(ragged.layers) == 2
        assert all(isinstance(layer, RaggedLayerCaches) for layer in ragged.layers)

    def test_length_count_must_match_caches(self):
        with pytest.raises(ShapeError):
            RaggedLayerCaches([LayerKVCache()], np.array([1, 2]))


class TestIncrementalAttention:
    @pytest.fixture()
    def attn(self):
        rope = RotaryEmbedding(4, 32)
        return MultiHeadAttention(
            8, 2, causal=True, rope=rope, rng=np.random.default_rng(0)
        )

    def test_step_by_step_matches_full_forward(self, attn):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 6, 8)).astype(np.float32)
        full = attn(Tensor(x)).data

        cache = LayerKVCache()
        outputs = []
        for t in range(6):
            out = attn(Tensor(x[:, t : t + 1]), cache=cache)
            outputs.append(out.data)
        incremental = np.concatenate(outputs, axis=1)
        assert np.allclose(incremental, full, atol=1e-5)

    def test_prefill_then_decode_matches(self, attn):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 5, 8)).astype(np.float32)
        full = attn(Tensor(x)).data

        cache = LayerKVCache()
        prefill = attn(Tensor(x[:, :3]), cache=cache).data
        step = attn(Tensor(x[:, 3:4]), cache=cache).data
        step2 = attn(Tensor(x[:, 4:5]), cache=cache).data
        assert np.allclose(prefill, full[:, :3], atol=1e-5)
        assert np.allclose(step, full[:, 3:4], atol=1e-5)
        assert np.allclose(step2, full[:, 4:5], atol=1e-5)

    def test_gqa_incremental(self):
        rope = RotaryEmbedding(4, 32)
        attn = MultiHeadAttention(
            8, 2, causal=True, rope=rope, n_kv_heads=1, rng=np.random.default_rng(3)
        )
        x = np.random.default_rng(4).normal(size=(1, 4, 8)).astype(np.float32)
        full = attn(Tensor(x)).data
        cache = LayerKVCache()
        outs = [attn(Tensor(x[:, t : t + 1]), cache=cache).data for t in range(4)]
        assert np.allclose(np.concatenate(outs, axis=1), full, atol=1e-5)


class TestCachedGeneration:
    def test_cached_matches_recompute(self, trained_llama):
        model, tokenizer = trained_llama
        prompt = np.asarray(tokenizer.encode("question : where does alice live ? answer :"))
        cached = model.greedy_generate(prompt, 6, use_cache=True)
        recomputed = model.greedy_generate(prompt, 6, use_cache=False)
        assert np.array_equal(cached, recomputed)

    def test_cached_respects_stop_token(self, trained_llama):
        model, tokenizer = trained_llama
        prompt = np.asarray(tokenizer.encode("alice lives in"))
        out = model.greedy_generate(
            prompt, 20, stop_token=tokenizer.eos_id, use_cache=True
        )
        if tokenizer.eos_id in out[len(prompt):]:
            stop_index = list(out[len(prompt):]).index(tokenizer.eos_id)
            assert stop_index == len(out) - len(prompt) - 1

    def test_cached_generation_faster_for_long_outputs(self, trained_llama):
        import time

        model, tokenizer = trained_llama
        prompt = np.asarray(tokenizer.encode("bob lives in"))

        start = time.perf_counter()
        model.greedy_generate(prompt, 40, use_cache=True)
        cached_s = time.perf_counter() - start
        start = time.perf_counter()
        model.greedy_generate(prompt, 40, use_cache=False)
        recompute_s = time.perf_counter() - start
        assert cached_s < recompute_s * 1.5  # generous: tiny model, noisy timer
