"""Shared fixtures for the test suite.

Accuracy-experiment tests reuse the disk-cached pretrained tiny models via
:mod:`repro.experiments.pretrained`; the first session on a clean checkout
pays the one-time training cost (~4 minutes), later sessions load from
``.cache`` in milliseconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import World, build_corpus, corpus_vocabulary
from repro.eval import WordTokenizer
from repro.models import build_model, get_config


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def world():
    return World.build(seed=0)


@pytest.fixture(scope="session")
def corpus(world):
    return build_corpus(world)


@pytest.fixture(scope="session")
def tokenizer(world):
    return WordTokenizer(corpus_vocabulary(world))


@pytest.fixture(scope="session")
def micro_llama_config(tokenizer):
    """A 4-layer, randomly initialized Llama for structural tests."""
    from dataclasses import replace

    config = get_config("tiny-llama").with_vocab(tokenizer.vocab_size)
    return replace(config, n_layers=4)


@pytest.fixture()
def micro_llama(micro_llama_config):
    return build_model(micro_llama_config, rng=np.random.default_rng(5))


@pytest.fixture(scope="session")
def micro_bert_config(tokenizer):
    from dataclasses import replace

    config = get_config("tiny-bert").with_vocab(tokenizer.vocab_size)
    return replace(config, n_layers=3)


@pytest.fixture()
def micro_bert(micro_bert_config):
    return build_model(micro_bert_config, rng=np.random.default_rng(6))


@pytest.fixture(scope="session")
def trained_llama():
    """The shared pretrained tiny Llama (trains once, then disk-cached)."""
    from repro.experiments.pretrained import pretrained_tiny_llama

    model, tok = pretrained_tiny_llama()
    return model, tok


@pytest.fixture(scope="session")
def trained_bert():
    from repro.experiments.pretrained import pretrained_tiny_bert

    model, tok = pretrained_tiny_bert()
    return model, tok


def finite_difference_gradient(fn, array: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of a scalar function of one array."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.ravel()
    for index in range(flat.size):
        plus = array.copy().ravel()
        minus = array.copy().ravel()
        plus[index] += eps
        minus[index] -= eps
        grad.ravel()[index] = (
            fn(plus.reshape(array.shape)) - fn(minus.reshape(array.shape))
        ) / (2 * eps)
    return grad
