"""MAC counting, ResNet-50 inventory, and Tables 1-2."""

import pytest

from repro.analysis import (
    PAPER_TABLE2_TENSOR_COUNTS,
    attention_bmm_macs,
    conv2d_macs,
    format_table1,
    format_table2,
    linear_macs,
    macs_per_parameter,
    model_macs,
    resnet50_convs,
    resnet50_macs,
    resnet50_params,
    resnet50_size_bytes,
    table1_rows,
    table2_rows,
    transformer_layer_macs,
)
from repro.errors import ConfigError
from repro.models import LLAMA2_7B, get_config


class TestMacCounters:
    def test_linear(self):
        assert linear_macs(10, 4, 5) == 200

    def test_linear_validates(self):
        with pytest.raises(ConfigError):
            linear_macs(0, 4, 5)

    def test_attention_bmm(self):
        assert attention_bmm_macs(2, 8, 4, 16) == 2 * 2 * 4 * 64 * 16

    def test_conv2d(self):
        assert conv2d_macs(8, 8, 3, 16, 3) == 8 * 8 * 16 * 27

    def test_conv2d_groups(self):
        grouped = conv2d_macs(8, 8, 16, 16, 3, groups=16)
        dense = conv2d_macs(8, 8, 16, 16, 3)
        assert grouped == dense // 16

    def test_conv2d_invalid_groups(self):
        with pytest.raises(ConfigError):
            conv2d_macs(8, 8, 10, 16, 3, groups=3)

    def test_llama_layer_dominated_by_linears(self):
        layer = transformer_layer_macs(LLAMA2_7B, 1, 128)
        linears = 128 * (4 * 4096**2 + 3 * 4096 * 11008)
        assert layer == linears + attention_bmm_macs(1, 128, 32, 128)


class TestPaperTable1Values:
    def test_llama2_7b_macs_match_paper(self):
        """Table 1 reports 850.0 B MACs for Llama-2-7B at (1, 128)."""
        macs = model_macs(LLAMA2_7B, batch=1, seq_len=128)
        assert abs(macs - 850e9) / 850e9 < 0.005

    def test_bert_base_macs_match_paper(self):
        """Table 1 reports 11.2 B MACs for BERT-Base at (1, 128)."""
        macs = model_macs(get_config("bert-base"), 1, 128, include_head=False)
        assert abs(macs - 11.2e9) / 11.2e9 < 0.01

    def test_compute_to_size_ordering(self):
        """The motivating observation: CNN reuse >> LLM reuse."""
        rows = {row.model: row for row in table1_rows()}
        assert (
            rows["resnet50"].compute_to_model_size_ratio
            > rows["llama2-7b"].compute_to_model_size_ratio
            > rows["bert-base"].compute_to_model_size_ratio
        )

    def test_table1_sizes(self):
        rows = {row.model: row for row in table1_rows()}
        assert rows["bert-base"].size_bytes == pytest.approx(219e6, rel=0.01)
        assert rows["llama2-7b"].size_bytes == pytest.approx(13.4e9, rel=0.01)
        assert rows["resnet50"].size_bytes == pytest.approx(51.1e6, rel=0.01)

    def test_format_table1(self):
        text = format_table1(table1_rows())
        assert "resnet50" in text and "llama2-7b" in text

    def test_macs_per_parameter_positive(self):
        assert macs_per_parameter(LLAMA2_7B) > 100


class TestResNet50:
    def test_parameter_count_matches_published(self):
        assert abs(resnet50_params() - 25.56e6) / 25.56e6 < 0.01

    def test_macs_match_published(self):
        """Standard single-crop ResNet-50: ~4.09-4.11 GMACs."""
        assert abs(resnet50_macs() - 4.1e9) / 4.1e9 < 0.01

    def test_conv_inventory_size(self):
        convs = resnet50_convs()
        # stem + (3+4+6+3) blocks x 3 convs + 4 projections = 53 convs.
        assert len(convs) == 1 + 16 * 3 + 4

    def test_size_bytes_fp16(self):
        assert resnet50_size_bytes() == 2 * resnet50_params()

    def test_macs_scale_with_batch(self):
        assert resnet50_macs(batch=4) == 4 * resnet50_macs(batch=1)


class TestTable2:
    def test_paper_scales_exact(self):
        """Table 2: O(2^18), O(2^30), O(2^37), O(2^85)."""
        expected = {
            "bert-base": 18,
            "bert-large": 30,
            "llama2-7b": 37,
            "llama2-70b": 85,
        }
        for row in table2_rows():
            assert row.log2_paper == expected[row.model]

    def test_figure4_counts_also_reported(self):
        rows = {row.model: row for row in table2_rows()}
        assert rows["llama2-7b"].n_tensors_fig4 == 7
        assert rows["bert-base"].n_tensors_fig4 == 6

    def test_format_table2(self):
        text = format_table2(table2_rows())
        assert "O(2^37)" in text and "O(2^85)" in text
