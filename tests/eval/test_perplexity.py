"""Corpus perplexity."""

import math

import numpy as np
import pytest

from repro.decomposition import DecompositionConfig, decomposed
from repro.errors import EvaluationError
from repro.eval import corpus_perplexity
from repro.eval.perplexity import PerplexityResult


class TestPerplexityResult:
    def test_perplexity_formula(self):
        result = PerplexityResult(total_log_likelihood=-100.0, total_tokens=50)
        assert result.perplexity == pytest.approx(math.exp(2.0))
        assert result.cross_entropy == pytest.approx(2.0)

    def test_zero_tokens_rejected(self):
        with pytest.raises(EvaluationError):
            PerplexityResult(0.0, 0).perplexity


class TestCorpusPerplexity:
    def test_trained_model_far_below_uniform(self, trained_llama, corpus):
        model, tokenizer = trained_llama
        result = corpus_perplexity(model, tokenizer, corpus[:64])
        assert result.perplexity < tokenizer.vocab_size / 10

    def test_random_model_near_uniform(self, micro_llama, tokenizer, corpus):
        result = corpus_perplexity(micro_llama, tokenizer, corpus[:32])
        # An untrained model is roughly uniform over the vocabulary.
        assert result.perplexity > tokenizer.vocab_size / 4

    def test_batching_invariant(self, trained_llama, corpus):
        model, tokenizer = trained_llama
        a = corpus_perplexity(model, tokenizer, corpus[:24], batch_size=4)
        b = corpus_perplexity(model, tokenizer, corpus[:24], batch_size=24)
        assert a.perplexity == pytest.approx(b.perplexity, rel=1e-4)
        assert a.total_tokens == b.total_tokens

    def test_decomposition_raises_perplexity(self, trained_llama, corpus):
        model, tokenizer = trained_llama
        before = corpus_perplexity(model, tokenizer, corpus[:48]).perplexity
        config = DecompositionConfig.all_tensors(
            model.config, tuple(range(model.config.n_layers)), rank=1
        )
        with decomposed(model, config):
            after = corpus_perplexity(model, tokenizer, corpus[:48]).perplexity
        assert after > 2 * before

    def test_empty_rejected(self, trained_llama):
        model, tokenizer = trained_llama
        with pytest.raises(EvaluationError):
            corpus_perplexity(model, tokenizer, [])
