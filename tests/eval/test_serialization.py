"""Task JSONL serialization."""

import pytest

from repro.errors import EvaluationError
from repro.eval import load_task, save_task
from repro.eval.task import GenerativeTask, MultipleChoiceTask
from repro.eval.tasks import build_arc_easy, build_gsm8k


class TestSaveLoadMultipleChoice:
    def test_round_trip(self, world, tmp_path):
        task = build_arc_easy(world, n_items=25)
        path = tmp_path / "arc_easy.jsonl"
        save_task(task, path)
        loaded = load_task(path)
        assert isinstance(loaded, MultipleChoiceTask)
        assert loaded.name == task.name
        assert len(loaded) == 25
        for a, b in zip(task.items, loaded.items):
            assert a == b

    def test_loaded_task_evaluates_identically(self, world, tmp_path, trained_llama):
        model, tokenizer = trained_llama
        task = build_arc_easy(world, n_items=15)
        path = tmp_path / "task.jsonl"
        save_task(task, path)
        loaded = load_task(path)
        original = task.evaluate(model, tokenizer)
        reloaded = loaded.evaluate(model, tokenizer)
        assert original.value == reloaded.value

    def test_creates_parents(self, world, tmp_path):
        path = tmp_path / "deep" / "nest" / "t.jsonl"
        save_task(build_arc_easy(world, n_items=5), path)
        assert path.exists()


class TestSaveLoadGenerative:
    def test_round_trip(self, world, tmp_path):
        task = build_gsm8k(world, n_items=10)
        path = tmp_path / "gsm8k.jsonl"
        save_task(task, path)
        loaded = load_task(path)
        assert isinstance(loaded, GenerativeTask)
        assert loaded.max_new_tokens == task.max_new_tokens
        assert [i.answer for i in loaded.items] == [i.answer for i in task.items]


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(EvaluationError):
            load_task(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(EvaluationError):
            load_task(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span_extraction", "name": "x"}\n')
        with pytest.raises(EvaluationError):
            load_task(path)
