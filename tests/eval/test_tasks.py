"""Benchmark-suite construction: item validity for all seven tasks."""

import numpy as np
import pytest

from repro.data.world import COUNTRIES, SCRIPTS
from repro.eval import BENCHMARK_NAMES, PAPER_TABLE3, build_suite, build_task
from repro.eval.task import GenerativeTask, MultipleChoiceTask
from repro.eval.tasks import (
    build_arc_challenge,
    build_arc_easy,
    build_gsm8k,
    build_hellaswag,
    build_mmlu,
    build_truthfulqa,
    build_winogrande,
)


class TestSuiteConstruction:
    def test_all_seven_benchmarks(self, world):
        suite = build_suite(world)
        assert set(suite) == set(BENCHMARK_NAMES)
        assert set(PAPER_TABLE3) == set(BENCHMARK_NAMES)

    def test_n_items_override(self, world):
        suite = build_suite(world, n_items=17)
        assert all(len(task) == 17 for task in suite.values())

    def test_unknown_task_rejected(self, world):
        with pytest.raises(KeyError):
            build_task("squad", world)

    def test_deterministic(self, world):
        a = build_arc_easy(world, n_items=20)
        b = build_arc_easy(world, n_items=20)
        assert [i.context for i in a.items] == [i.context for i in b.items]


class TestArcEasy:
    def test_answers_are_correct_facts(self, world):
        task = build_arc_easy(world, n_items=50)
        for item in task.items:
            answer = item.choices[item.answer_index]
            if "capital" in item.context:
                country = item.context.split("of ")[1].split(" ?")[0]
                assert world.capital_of[country] == answer
            else:
                name = item.context.split("does ")[1].split(" live")[0]
                assert world.person(name).city == answer

    def test_choices_unique(self, world):
        for item in build_arc_easy(world, n_items=50).items:
            assert len(set(item.choices)) == len(item.choices)

    def test_no_myth_countries(self, world):
        for item in build_arc_easy(world, n_items=100).items:
            if "capital" in item.context:
                country = item.context.split("of ")[1].split(" ?")[0]
                assert country not in world.myth_capital_of


class TestArcChallenge:
    def test_two_hop_answers(self, world):
        task = build_arc_challenge(world, n_items=50)
        for item in task.items:
            name = item.context.split("does ")[1].split(" live")[0]
            assert item.choices[item.answer_index] == world.country_of_person(name)

    def test_heldout_fraction_respected(self, world):
        task = build_arc_challenge(world, n_items=200, heldout_fraction=1.0)
        heldout = set(world.qa_heldout_people)
        for item in task.items:
            name = item.context.split("does ")[1].split(" live")[0]
            assert name in heldout

    def test_choices_are_countries(self, world):
        for item in build_arc_challenge(world, n_items=30).items:
            assert all(c in COUNTRIES for c in item.choices)


class TestHellaswag:
    def test_correct_ending_matches_script(self, world):
        task = build_hellaswag(world, n_items=50)
        endings = {f"{result}" for _, _, result in SCRIPTS}
        for item in task.items:
            answer = item.choices[item.answer_index]
            activity = item.context.split(". ")[1].strip()
            name = item.context.split(" goes")[0]
            matching = [r for l, a, r in SCRIPTS if f"{name} {a} ." == activity]
            assert len(matching) == 1
            assert answer == f"{name} {matching[0]} ."

    def test_distractors_same_person(self, world):
        for item in build_hellaswag(world, n_items=30).items:
            name = item.context.split(" goes")[0]
            assert all(c.startswith(name + " ") for c in item.choices)


class TestMMLU:
    def test_questions_about_heldout_people(self, world):
        heldout = set(world.qa_heldout_people)
        for item in build_mmlu(world, n_items=60).items:
            name = [w for w in item.context.split() if w in {p.name for p in world.people}]
            assert name and name[0] in heldout

    def test_answer_is_true_fact(self, world):
        task = build_mmlu(world, n_items=80)
        for item in task.items:
            answer = item.choices[item.answer_index]
            assert answer in item.context or True  # answer is not in the prompt
            assert answer not in item.context.split()


class TestTruthfulQA:
    def test_truth_and_myth_both_present(self, world):
        task = build_truthfulqa(world, n_items=40)
        for item in task.items:
            country = item.context.split("of ")[1].split(" ?")[0]
            truth = world.capital_of[country]
            myth = world.myth_capital_of[country]
            assert truth in item.choices
            assert myth in item.choices
            assert item.choices[item.answer_index] == truth

    def test_only_myth_countries_used(self, world):
        for item in build_truthfulqa(world, n_items=40).items:
            country = item.context.split("of ")[1].split(" ?")[0]
            assert country in world.myth_capital_of


class TestWinogrande:
    def test_binary_choice(self, world):
        task = build_winogrande(world, n_items=40)
        for item in task.items:
            assert len(item.choices) == 2

    def test_holder_is_answer(self, world):
        for item in build_winogrande(world, n_items=60).items:
            words = item.context.split()
            holder = words[words.index("has") - 1]
            assert item.choices[item.answer_index] == f"{holder} ."

    def test_holder_position_varies(self, world):
        """The holder must not always be the first-introduced person."""
        first_count = 0
        items = build_winogrande(world, n_items=100).items
        for item in items:
            words = item.context.split()
            first_person = words[0]
            holder = words[words.index("has") - 1]
            if holder == first_person:
                first_count += 1
        assert 20 < first_count < 80


class TestGSM8K:
    def test_generative_with_numeric_answers(self, world):
        task = build_gsm8k(world, n_items=30)
        assert isinstance(task, GenerativeTask)
        for item in task.items:
            assert item.answer.isdigit()
            assert 2 <= int(item.answer) <= 20

    def test_n_shots_in_prompt(self, world):
        task = build_gsm8k(world, n_items=5, n_shots=8)
        for item in task.items:
            # 8 complete stories plus the open question at the end.
            assert item.prompt.count(" now has") == 9
            assert item.prompt.endswith(" now has")

    def test_answer_consistent_with_story(self, world):
        for item in build_gsm8k(world, n_items=30).items:
            tail = item.prompt.split(" . ")[-3:]
            numbers = [int(w) for w in " ".join(tail).split() if w.isdigit()]
            assert numbers[-2] + numbers[-1] == int(item.answer)
