"""Word-level tokenizer."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.tokenizer import SPECIAL_TOKENS, WordTokenizer


@pytest.fixture()
def tok():
    return WordTokenizer(["apple", "banana", "cherry"])


class TestVocabulary:
    def test_specials_first(self, tok):
        assert tok.pad_id == 0
        assert tok.word_of(0) == "<pad>"
        assert tok.vocab_size == len(SPECIAL_TOKENS) + 3

    def test_word_round_trip(self, tok):
        for word in ("apple", "banana", "cherry"):
            assert tok.word_of(tok.id_of(word)) == word

    def test_unknown_maps_to_unk(self, tok):
        assert tok.id_of("durian") == tok.unk_id

    def test_contains(self, tok):
        assert "apple" in tok
        assert "durian" not in tok

    def test_collision_with_special_rejected(self):
        with pytest.raises(EvaluationError):
            WordTokenizer(["<pad>", "apple"])

    def test_duplicates_deduped(self):
        tok = WordTokenizer(["a", "a", "b"])
        assert tok.vocab_size == len(SPECIAL_TOKENS) + 2

    def test_word_of_out_of_range(self, tok):
        with pytest.raises(EvaluationError):
            tok.word_of(999)


class TestEncodeDecode:
    def test_encode_adds_bos(self, tok):
        ids = tok.encode("apple banana")
        assert ids[0] == tok.bos_id
        assert len(ids) == 3

    def test_encode_eos(self, tok):
        ids = tok.encode("apple", add_bos=False, add_eos=True)
        assert ids == [tok.id_of("apple"), tok.eos_id]

    def test_decode_skips_specials(self, tok):
        ids = tok.encode("apple cherry", add_bos=True, add_eos=True)
        assert tok.decode(ids) == "apple cherry"

    def test_decode_keeps_specials_when_asked(self, tok):
        ids = [tok.bos_id, tok.id_of("apple")]
        assert tok.decode(ids, skip_special=False) == "<bos> apple"

    def test_round_trip(self, tok):
        text = "banana apple cherry"
        assert tok.decode(tok.encode(text)) == text


class TestBatch:
    def test_padding_and_mask(self, tok):
        ids, mask = tok.encode_batch(["apple", "apple banana cherry"])
        assert ids.shape == mask.shape == (2, 4)
        assert ids[0, 2] == tok.pad_id
        assert mask[0].tolist() == [False, False, True, True]
        assert not mask[1].any()

    def test_empty_batch_rejected(self, tok):
        with pytest.raises(EvaluationError):
            tok.encode_batch([])


class TestState:
    def test_state_round_trip(self, tok):
        clone = WordTokenizer.from_state(tok.state())
        assert clone.state() == tok.state()
        assert clone.id_of("banana") == tok.id_of("banana")

    def test_bad_state_rejected(self):
        with pytest.raises(EvaluationError):
            WordTokenizer.from_state(["apple", "banana"])
