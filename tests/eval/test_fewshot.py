"""Few-shot prompting for multiple-choice tasks."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval import MultipleChoiceItem, MultipleChoiceTask, with_fewshot


def _items(n=6):
    return [
        MultipleChoiceItem(
            context=f"question {i} answer :",
            choices=(f"opt{i}a", f"opt{i}b"),
            answer_index=i % 2,
        )
        for i in range(n)
    ]


class TestWithFewshot:
    def test_zero_shots_identity(self):
        items = _items()
        assert with_fewshot(items, 0) == items

    def test_exemplars_prepended(self):
        shot = with_fewshot(_items(), 2, seed=0)
        for item in shot:
            # Two exemplar questions plus the live one.
            assert item.context.count("question") == 3
            assert item.context.count("answer :") == 3

    def test_exemplars_include_correct_answers(self):
        items = _items()
        shot = with_fewshot(items, 1, seed=1)
        answers = {i.choices[i.answer_index] for i in items}
        for item in shot:
            prefix = item.context.rsplit("question", 1)[0]
            assert any(answer in prefix for answer in answers)

    def test_item_never_its_own_exemplar(self):
        items = _items(3)
        shot = with_fewshot(items, 2, seed=2)
        for original, prompted in zip(items, shot):
            own_answer = original.choices[original.answer_index]
            prefix = prompted.context[: -len(original.context)]
            assert own_answer not in prefix

    def test_choices_and_answers_preserved(self):
        items = _items()
        shot = with_fewshot(items, 2, seed=3)
        for original, prompted in zip(items, shot):
            assert prompted.choices == original.choices
            assert prompted.answer_index == original.answer_index

    def test_deterministic(self):
        a = with_fewshot(_items(), 2, seed=4)
        b = with_fewshot(_items(), 2, seed=4)
        assert [i.context for i in a] == [i.context for i in b]

    def test_too_few_items_rejected(self):
        with pytest.raises(EvaluationError):
            with_fewshot(_items(2), 2)

    def test_negative_shots_rejected(self):
        with pytest.raises(EvaluationError):
            with_fewshot(_items(), -1)

    def test_fewshot_task_evaluates(self, trained_llama):
        """End to end: a 2-shot ARC-Easy variant runs through the model."""
        from repro.eval.tasks import build_arc_easy
        from repro.experiments import get_world

        model, tokenizer = trained_llama
        base = build_arc_easy(get_world(), n_items=12)
        shot_task = MultipleChoiceTask(
            "arc_easy_2shot", with_fewshot(base.items, 2, seed=5)
        )
        result = shot_task.evaluate(model, tokenizer)
        assert 0.0 <= result.value <= 1.0
        assert result.n_items == 12
