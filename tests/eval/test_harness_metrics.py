"""Suite runner and scalar metrics."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval import evaluate_suite
from repro.eval.metrics import (
    accuracy,
    accuracy_stderr,
    exact_match,
    percentage_points,
    relative_change,
)
from repro.eval.task import MultipleChoiceItem, MultipleChoiceTask
from repro.eval.tokenizer import WordTokenizer
from tests.eval.test_task import _BigramModel


class TestMetrics:
    def test_accuracy(self):
        assert accuracy([True, True, False, False]) == 0.5

    def test_accuracy_empty_rejected(self):
        with pytest.raises(EvaluationError):
            accuracy([])

    def test_stderr_zero_for_constant(self):
        assert accuracy_stderr([True, True, True]) == 0.0

    def test_stderr_formula(self):
        values = [True, False, True, False]
        expected = np.std([1.0, 0.0, 1.0, 0.0], ddof=1) / 2.0
        assert accuracy_stderr(values) == pytest.approx(expected)

    def test_stderr_single_item(self):
        assert accuracy_stderr([True]) == 0.0

    def test_exact_match_whitespace_normalized(self):
        assert exact_match(" 12 ", "12")
        assert not exact_match("12", "13")

    def test_percentage_points(self):
        assert percentage_points(0.75, 0.70) == pytest.approx(5.0)

    def test_relative_change(self):
        assert relative_change(2.0, 1.0) == -0.5
        assert relative_change(0.0, 1.0) == 0.0


class TestSuiteRunner:
    @pytest.fixture()
    def setup(self):
        tok = WordTokenizer(["red", "blue", "the"])
        model = _BigramModel(tok.vocab_size, tok.id_of("red"))
        win = MultipleChoiceTask(
            "win", [MultipleChoiceItem("the", ("red", "blue"), 0)] * 4
        )
        lose = MultipleChoiceTask(
            "lose", [MultipleChoiceItem("the", ("blue", "red"), 0)] * 4
        )
        return model, tok, {"win": win, "lose": lose}

    def test_evaluates_every_task(self, setup):
        model, tok, tasks = setup
        suite = evaluate_suite(model, tok, tasks)
        assert suite.accuracy("win") == 1.0
        assert suite.accuracy("lose") == 0.0

    def test_mean_accuracy(self, setup):
        model, tok, tasks = setup
        suite = evaluate_suite(model, tok, tasks)
        assert suite.mean_accuracy == 0.5

    def test_as_dict(self, setup):
        model, tok, tasks = setup
        assert evaluate_suite(model, tok, tasks).as_dict() == {"win": 1.0, "lose": 0.0}

    def test_table_renders(self, setup):
        model, tok, tasks = setup
        table = evaluate_suite(model, tok, tasks).table()
        assert "win" in table and "mean" in table

    def test_limit_forwarded(self, setup):
        model, tok, tasks = setup
        suite = evaluate_suite(model, tok, tasks, limit=2)
        assert suite.results["win"].n_items == 2
