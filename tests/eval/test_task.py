"""Task scoring machinery: log-likelihood ranking and generative EM."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.task import (
    GenerativeItem,
    GenerativeTask,
    MultipleChoiceItem,
    MultipleChoiceTask,
    score_continuations,
)
from repro.eval.tokenizer import WordTokenizer


class _BigramModel:
    """A hand-built 'LM' whose next-token logits favour a fixed token.

    Makes expected log-likelihood ranking fully predictable: continuations
    consisting of the favoured token score highest.
    """

    def __init__(self, vocab_size, favourite):
        self.vocab_size = vocab_size
        self.favourite = favourite
        self.training = False

    def __call__(self, ids, pad_mask=None):
        from repro.tensor import Tensor

        batch, seq = np.asarray(ids).shape
        logits = np.zeros((batch, seq, self.vocab_size), dtype=np.float32)
        logits[:, :, self.favourite] = 5.0
        return Tensor(logits)

    def eval(self):
        return self

    def train(self, mode=True):
        return self

    def greedy_generate(self, prompt, max_new_tokens, stop_token=None):
        extra = np.full(max_new_tokens, self.favourite, dtype=np.int64)
        return np.concatenate([np.asarray(prompt), extra])


@pytest.fixture()
def tok():
    return WordTokenizer(["red", "blue", "green", "answer", "is", "the"])


@pytest.fixture()
def model(tok):
    return _BigramModel(tok.vocab_size, tok.id_of("red"))


class TestScoreContinuations:
    def test_favourite_token_scores_highest(self, tok, model):
        scores = score_continuations(model, tok, "the answer is", ["red", "blue", "green"])
        assert np.argmax(scores) == 0

    def test_scores_are_log_probabilities(self, tok, model):
        scores = score_continuations(model, tok, "the answer is", ["red"])
        assert scores[0] <= 0.0

    def test_longer_continuation_accumulates(self, tok, model):
        one = score_continuations(model, tok, "the", ["red"])[0]
        two = score_continuations(model, tok, "the", ["red red"])[0]
        assert two == pytest.approx(2 * one, rel=1e-5)

    def test_batching_consistent(self, tok, model):
        choices = ["red", "blue", "green", "is", "the", "answer"]
        a = score_continuations(model, tok, "the", choices, batch_size=2)
        b = score_continuations(model, tok, "the", choices, batch_size=16)
        assert np.allclose(a, b, atol=1e-5)

    def test_empty_choice_rejected(self, tok, model):
        with pytest.raises(EvaluationError):
            score_continuations(model, tok, "the", [""])


class TestMultipleChoiceTask:
    def test_item_answer_index_validated(self):
        with pytest.raises(EvaluationError):
            MultipleChoiceItem(context="c", choices=("a", "b"), answer_index=2)

    def test_accuracy_all_correct(self, tok, model):
        items = [
            MultipleChoiceItem("the answer is", ("red", "blue"), 0)
            for _ in range(5)
        ]
        result = MultipleChoiceTask("demo", items).evaluate(model, tok)
        assert result.value == 1.0
        assert result.n_items == 5

    def test_accuracy_all_wrong(self, tok, model):
        items = [
            MultipleChoiceItem("the answer is", ("blue", "red"), 0)
            for _ in range(4)
        ]
        result = MultipleChoiceTask("demo", items).evaluate(model, tok)
        assert result.value == 0.0

    def test_limit(self, tok, model):
        items = [
            MultipleChoiceItem("the", ("red", "blue"), 0) for _ in range(10)
        ]
        result = MultipleChoiceTask("demo", items).evaluate(model, tok, limit=3)
        assert result.n_items == 3

    def test_length_normalization_changes_metric_name(self, tok, model):
        items = [MultipleChoiceItem("the", ("red", "blue"), 0)]
        result = MultipleChoiceTask("demo", items, length_normalize=True).evaluate(model, tok)
        assert result.metric == "acc_norm"

    def test_empty_items_rejected(self):
        with pytest.raises(EvaluationError):
            MultipleChoiceTask("demo", [])

    def test_result_str(self, tok, model):
        items = [MultipleChoiceItem("the", ("red", "blue"), 0)]
        text = str(MultipleChoiceTask("demo", items).evaluate(model, tok))
        assert "demo" in text and "acc" in text


class TestGenerativeTask:
    def test_exact_match_scores(self, tok, model):
        good = GenerativeItem(prompt="the answer is", answer="red")
        bad = GenerativeItem(prompt="the answer is", answer="blue")
        task = GenerativeTask("gen", [good, bad])
        result = task.evaluate(model, tok)
        assert result.value == 0.5
        assert result.metric == "exact_match"

    def test_predict_returns_first_word(self, tok, model):
        task = GenerativeTask("gen", [GenerativeItem("the", "red")], max_new_tokens=3)
        assert task.predict(model, tok, task.items[0]) == "red"
