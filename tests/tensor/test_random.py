"""Tests for seeded generators and initializers."""

import numpy as np
import pytest

from repro.tensor import random as trandom


class TestGenerator:
    def test_deterministic(self):
        a = trandom.generator(42).random(5)
        b = trandom.generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = trandom.generator(1).random(5)
        b = trandom.generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_split_children_independent(self):
        children = trandom.split(trandom.generator(0), 3)
        draws = [c.random(4) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])


class TestInitializers:
    def test_normal_statistics(self):
        rng = trandom.generator(0)
        t = trandom.normal(rng, (200, 200), std=0.02)
        assert t.requires_grad
        assert abs(float(t.data.std()) - 0.02) < 0.002

    def test_uniform_bounds(self):
        rng = trandom.generator(1)
        t = trandom.uniform(rng, (100, 100), low=-0.1, high=0.1)
        assert t.data.min() >= -0.1
        assert t.data.max() <= 0.1

    def test_xavier_bound_formula(self):
        rng = trandom.generator(2)
        t = trandom.xavier_uniform(rng, (64, 256))
        bound = np.sqrt(6.0 / (64 + 256))
        assert np.abs(t.data).max() <= bound + 1e-6

    def test_kaiming_std(self):
        rng = trandom.generator(3)
        t = trandom.kaiming_normal(rng, (400, 100))
        assert abs(float(t.data.std()) - np.sqrt(2.0 / 400)) < 0.01

    def test_zeros_ones(self):
        assert np.all(trandom.zeros((2, 2)).data == 0.0)
        assert np.all(trandom.ones((2, 2)).data == 1.0)

    def test_dtype_is_float32(self):
        rng = trandom.generator(4)
        assert trandom.normal(rng, (2, 2)).data.dtype == np.float32


class TestOrthonormalColumns:
    def test_columns_are_orthonormal(self):
        rng = trandom.generator(5)
        q = trandom.orthonormal_columns(rng, 10, 4)
        assert q.shape == (10, 4)
        assert np.allclose(q.T @ q, np.eye(4), atol=1e-10)

    def test_square_case(self):
        rng = trandom.generator(6)
        q = trandom.orthonormal_columns(rng, 5, 5)
        assert np.allclose(q.T @ q, np.eye(5), atol=1e-10)

    def test_too_many_columns_rejected(self):
        rng = trandom.generator(7)
        with pytest.raises(ValueError):
            trandom.orthonormal_columns(rng, 3, 5)
