"""Gradient and value checks for every primitive tensor op."""

import numpy as np
import pytest

from repro.errors import GradientError, ShapeError
from repro.tensor import Tensor
from tests.conftest import finite_difference_gradient


def _check_grad(build, shape, seed=0, atol=2e-3):
    """Compare autograd to finite differences for a scalar-valued ``build``."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape).astype(np.float32)
    x = Tensor(data, requires_grad=True)
    out = build(x)
    out.backward()

    def scalar(values):
        return build(Tensor(values.astype(np.float32))).item()

    numeric = finite_difference_gradient(scalar, data)
    assert x.grad is not None
    assert np.allclose(x.grad, numeric, atol=atol), (
        f"max err {np.abs(x.grad - numeric).max()}"
    )


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        assert np.allclose(out.data, [4.0, 6.0])

    def test_add_grad(self):
        _check_grad(lambda x: (x + x * 2.0).sum(), (3, 4))

    def test_add_broadcast_grad(self):
        rng = np.random.default_rng(0)
        bias = Tensor(rng.normal(size=(4,)).astype(np.float32), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        (x + bias).sum().backward()
        assert bias.grad.shape == (4,)
        assert np.allclose(bias.grad, 3.0)

    def test_radd_scalar(self):
        out = 2.0 + Tensor([1.0])
        assert np.allclose(out.data, [3.0])

    def test_sub(self):
        out = Tensor([5.0]) - Tensor([2.0])
        assert np.allclose(out.data, [3.0])

    def test_rsub(self):
        out = 1.0 - Tensor([3.0])
        assert np.allclose(out.data, [-2.0])

    def test_neg_grad(self):
        _check_grad(lambda x: (-x).sum(), (5,))

    def test_mul_grad(self):
        _check_grad(lambda x: (x * x).sum(), (4, 2))

    def test_mul_broadcast(self):
        scale = Tensor(np.float32(2.5), requires_grad=True)
        x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        (x * scale).sum().backward()
        assert np.allclose(scale.grad, 6.0)

    def test_div_grad(self):
        _check_grad(lambda x: (x / (x * x + 2.0)).sum(), (3, 3))

    def test_rtruediv(self):
        out = 6.0 / Tensor([2.0, 3.0])
        assert np.allclose(out.data, [3.0, 2.0])

    def test_pow_grad(self):
        _check_grad(lambda x: (x**3).sum(), (4,))

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(ShapeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestTranscendental:
    def test_exp_grad(self):
        _check_grad(lambda x: x.exp().sum(), (3, 2))

    def test_log_grad(self):
        rng = np.random.default_rng(3)
        data = (rng.random((4,)).astype(np.float32) + 0.5)
        x = Tensor(data, requires_grad=True)
        x.log().sum().backward()
        assert np.allclose(x.grad, 1.0 / data, atol=1e-4)

    def test_tanh_grad(self):
        _check_grad(lambda x: x.tanh().sum(), (4, 4))

    def test_sigmoid_values(self):
        out = Tensor([0.0]).sigmoid()
        assert np.allclose(out.data, [0.5])

    def test_sigmoid_grad(self):
        _check_grad(lambda x: x.sigmoid().sum(), (6,))

    def test_relu(self):
        x = Tensor([-1.0, 0.5], requires_grad=True)
        out = x.relu()
        assert np.allclose(out.data, [0.0, 0.5])
        out.sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0])

    def test_sqrt(self):
        out = Tensor([4.0, 9.0]).sqrt()
        assert np.allclose(out.data, [2.0, 3.0])


class TestMatmul:
    def test_2d_values(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0, 0.0], [0.0, 1.0]])
        assert np.allclose((a @ b).data, a.data)

    def test_2d_grads(self):
        rng = np.random.default_rng(7)
        a = Tensor(rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)).astype(np.float32), requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 5)) @ b.data.T, atol=1e-5)
        assert np.allclose(b.grad, a.data.T @ np.ones((3, 5)), atol=1e-5)

    def test_batched_against_finite_difference(self):
        rng = np.random.default_rng(8)
        fixed = Tensor(rng.normal(size=(2, 4, 3)).astype(np.float32))

        def build(x):
            return (x @ fixed).sum()

        _check_grad(build, (2, 3, 4), seed=9)

    def test_broadcast_weight_grad(self):
        rng = np.random.default_rng(10)
        x = Tensor(rng.normal(size=(2, 5, 3)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        (x @ w).sum().backward()
        assert w.grad.shape == (3, 4)
        expected = np.einsum("bij,bik->jk", x.data, np.ones((2, 5, 4)))
        assert np.allclose(w.grad, expected, atol=1e-4)

    def test_vector_matrix(self):
        v = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        m = Tensor(np.eye(2, dtype=np.float32) * 3.0, requires_grad=True)
        out = v @ m
        assert out.shape == (2,)
        out.sum().backward()
        assert np.allclose(v.grad, [3.0, 3.0])

    def test_matrix_vector(self):
        m = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        v = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        out = m @ v
        assert out.shape == (3,)
        out.sum().backward()
        assert np.allclose(v.grad, [3.0, 3.0])

    def test_vector_vector_rejected(self):
        with pytest.raises(ShapeError):
            Tensor([1.0, 2.0]) @ Tensor([3.0, 4.0])


class TestReductions:
    def test_sum_axis(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert np.allclose(x.sum(axis=0).data, [3.0, 5.0, 7.0])

    def test_sum_keepdims_grad(self):
        _check_grad(lambda x: (x.sum(axis=1, keepdims=True) * x).sum(), (3, 4))

    def test_mean(self):
        x = Tensor(np.arange(4, dtype=np.float32))
        assert np.isclose(x.mean().item(), 1.5)

    def test_mean_axis_grad(self):
        _check_grad(lambda x: (x.mean(axis=-1) ** 2).sum(), (4, 5))

    def test_max_values(self):
        x = Tensor([[1.0, 5.0], [7.0, 2.0]])
        assert np.allclose(x.max(axis=1).data, [5.0, 7.0])

    def test_max_grad_flows_to_argmax(self):
        x = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        x = Tensor([[3.0, 3.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.isclose(x.grad.sum(), 1.0)


class TestShape:
    def test_reshape_grad(self):
        _check_grad(lambda x: (x.reshape(6) ** 2).sum(), (2, 3))

    def test_reshape_tuple_arg(self):
        x = Tensor(np.zeros((2, 3), dtype=np.float32))
        assert x.reshape((3, 2)).shape == (3, 2)

    def test_transpose_default(self):
        x = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert x.T.shape == (4, 3, 2)

    def test_transpose_axes_grad(self):
        fixed = Tensor(np.random.default_rng(0).normal(size=(2, 4, 3)).astype(np.float32))
        _check_grad(lambda x: (x.transpose(0, 2, 1) * fixed).sum(), (2, 3, 4))

    def test_swapaxes(self):
        x = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert x.swapaxes(1, 2).shape == (2, 4, 3)

    def test_getitem_slice_grad(self):
        x = Tensor(np.arange(10, dtype=np.float32), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        assert np.allclose(x.grad, expected)

    def test_getitem_fancy_repeated_indices_accumulate(self):
        x = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        ids = np.array([1, 1, 2])
        x[ids].sum().backward()
        assert np.allclose(x.grad, [0.0, 2.0, 1.0])

    def test_concatenate_values_and_grads(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros((2, 3), dtype=np.float32), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)

    def test_masked_fill(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        out = x.masked_fill(mask, -5.0)
        assert np.allclose(out.data, [[-5.0, 1.0], [1.0, -5.0]])
        out.sum().backward()
        assert np.allclose(x.grad, 1.0 - mask)


class TestBackwardMechanics:
    def test_scalar_backward_default_seed(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3.0).sum().backward()
        assert np.allclose(x.grad, [3.0])

    def test_nonscalar_backward_requires_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2.0).backward()

    def test_wrong_seed_shape_rejected(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2.0).backward(np.ones(3, dtype=np.float32))

    def test_reused_tensor_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0 + x * 3.0
        y.sum().backward()
        assert np.allclose(x.grad, [5.0])

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        (x.detach() * 2.0).sum().backward()
        assert x.grad is None

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2.0
        (a + a * 3.0).sum().backward()
        assert np.allclose(x.grad, [8.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        out = x
        for _ in range(3000):
            out = out + 0.0
        out.sum().backward()
        assert np.allclose(x.grad, [1.0])
