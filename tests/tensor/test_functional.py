"""Value and gradient checks for the composite functional layer."""

import numpy as np
import pytest
from scipy import special

from repro.errors import ShapeError
from repro.tensor import Tensor
from repro.tensor import functional as F
from tests.conftest import finite_difference_gradient


def _grad_check(build, shape, seed=0, atol=2e-3):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape).astype(np.float32)
    x = Tensor(data, requires_grad=True)
    build(x).backward()

    def scalar(values):
        return build(Tensor(values.astype(np.float32))).item()

    numeric = finite_difference_gradient(scalar, data)
    assert np.allclose(x.grad, numeric, atol=atol)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)).astype(np.float32))
        out = F.softmax(x)
        assert F.ensure_probability_simplex(out.data)

    def test_shift_invariance(self):
        x = np.random.default_rng(1).normal(size=(2, 5)).astype(np.float32)
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b, atol=1e-5)

    def test_extreme_values_stable(self):
        x = Tensor(np.array([[1000.0, 0.0, -1000.0]], dtype=np.float32))
        out = F.softmax(x).data
        assert np.isfinite(out).all()
        assert np.isclose(out.sum(), 1.0)

    def test_grad(self):
        _grad_check(lambda x: (F.softmax(x) ** 2).sum(), (3, 5))

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(2).normal(size=(3, 6)).astype(np.float32))
        assert np.allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-5
        )

    def test_log_softmax_grad(self):
        _grad_check(lambda x: F.log_softmax(x)[0, 0], (2, 4))


class TestActivations:
    def test_gelu_matches_erf_formula(self):
        data = np.linspace(-3, 3, 13).astype(np.float32)
        expected = data * 0.5 * (1 + special.erf(data / np.sqrt(2)))
        out = F.gelu(Tensor(data)).data
        assert np.allclose(out, expected, atol=1e-6)

    def test_gelu_grad(self):
        _grad_check(lambda x: F.gelu(x).sum(), (10,))

    def test_gelu_tanh_close_to_exact(self):
        data = np.linspace(-3, 3, 25).astype(np.float32)
        exact = F.gelu(Tensor(data)).data
        approx = F.gelu_tanh(Tensor(data)).data
        assert np.abs(exact - approx).max() < 5e-3

    def test_silu_values(self):
        assert np.isclose(F.silu(Tensor([0.0])).data[0], 0.0)
        assert F.silu(Tensor([10.0])).data[0] == pytest.approx(10.0, abs=1e-3)

    def test_silu_grad(self):
        _grad_check(lambda x: F.silu(x).sum(), (8,))


class TestNorms:
    def test_layer_norm_zero_mean_unit_var(self):
        x = Tensor(np.random.default_rng(3).normal(2.0, 5.0, size=(6, 16)).astype(np.float32))
        weight = Tensor(np.ones(16, dtype=np.float32))
        bias = Tensor(np.zeros(16, dtype=np.float32))
        out = F.layer_norm(x, weight, bias).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-2)

    def test_layer_norm_affine(self):
        x = Tensor(np.random.default_rng(4).normal(size=(2, 8)).astype(np.float32))
        weight = Tensor(np.full(8, 2.0, dtype=np.float32))
        bias = Tensor(np.full(8, 1.0, dtype=np.float32))
        out = F.layer_norm(x, weight, bias).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-4)

    def test_layer_norm_grad(self):
        weight = Tensor(np.ones(6, dtype=np.float32))
        bias = Tensor(np.zeros(6, dtype=np.float32))
        _grad_check(lambda x: (F.layer_norm(x, weight, bias) ** 2).sum(), (3, 6))

    def test_rms_norm_scale(self):
        x = Tensor(np.full((2, 4), 3.0, dtype=np.float32))
        weight = Tensor(np.ones(4, dtype=np.float32))
        out = F.rms_norm(x, weight).data
        assert np.allclose(out, 1.0, atol=1e-3)

    def test_rms_norm_grad(self):
        weight = Tensor(np.ones(5, dtype=np.float32))
        _grad_check(lambda x: (F.rms_norm(x, weight) ** 2).sum(), (2, 5))


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        rng = np.random.default_rng(5)
        logits = rng.normal(size=(4, 6)).astype(np.float32)
        targets = np.array([0, 3, 5, 1])
        loss = F.cross_entropy(Tensor(logits), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        manual = -log_probs[np.arange(4), targets].mean()
        assert np.isclose(loss, manual, atol=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -20.0, dtype=np.float32)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2])).item()
        assert loss < 1e-3

    def test_ignore_index(self):
        rng = np.random.default_rng(6)
        logits = rng.normal(size=(3, 4)).astype(np.float32)
        full = F.cross_entropy(Tensor(logits[:2]), np.array([1, 2])).item()
        masked = F.cross_entropy(
            Tensor(logits), np.array([1, 2, -1]), ignore_index=-1
        ).item()
        assert np.isclose(full, masked, atol=1e-5)

    def test_all_ignored_rejected(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(
                Tensor(np.zeros((2, 3), dtype=np.float32)),
                np.array([-1, -1]),
                ignore_index=-1,
            )

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4), dtype=np.float32)), np.array([0, 1]))

    def test_grad(self):
        targets = np.array([2, 0, 1])
        _grad_check(lambda x: F.cross_entropy(x, targets), (3, 4))


class TestSequenceLogLikelihood:
    def test_matches_manual_sum(self):
        rng = np.random.default_rng(7)
        logits = rng.normal(size=(2, 4, 5)).astype(np.float32)
        targets = rng.integers(0, 5, size=(2, 4))
        got = F.sequence_log_likelihood(Tensor(logits), targets)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        manual = log_probs[
            np.arange(2)[:, None], np.arange(4)[None, :], targets
        ].sum(axis=-1)
        assert np.allclose(got, manual, atol=1e-5)

    def test_mask_selects_positions(self):
        rng = np.random.default_rng(8)
        logits = rng.normal(size=(1, 3, 4)).astype(np.float32)
        targets = np.array([[0, 1, 2]])
        mask = np.array([[0.0, 1.0, 0.0]])
        masked = F.sequence_log_likelihood(Tensor(logits), targets, mask=mask)
        full = F.sequence_log_likelihood(Tensor(logits), targets)
        assert masked[0] > full[0]  # dropping negative terms raises the sum

    def test_rejects_2d_logits(self):
        with pytest.raises(ShapeError):
            F.sequence_log_likelihood(
                Tensor(np.zeros((2, 3), dtype=np.float32)), np.zeros((2, 3), dtype=int)
            )


class TestDropout:
    def test_identity_in_eval(self):
        x = Tensor(np.ones((3, 3), dtype=np.float32))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_preserves_expectation(self):
        rng = np.random.default_rng(9)
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = F.dropout(x, 0.3, rng, training=True)
        assert np.isclose(out.data.mean(), 1.0, atol=0.02)

    def test_invalid_probability(self):
        with pytest.raises(ShapeError):
            F.dropout(Tensor([1.0]), 1.5, np.random.default_rng(0), training=True)
