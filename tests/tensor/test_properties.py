"""Property-based tests (hypothesis) for autograd invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor
from repro.tensor import functional as F

_dims = st.integers(min_value=1, max_value=6)


def _random_array(rng_seed, shape):
    return np.random.default_rng(rng_seed).normal(size=shape).astype(np.float32)


@settings(max_examples=40, deadline=None)
@given(rows=_dims, cols=_dims, seed=st.integers(0, 2**16))
def test_sum_gradient_is_ones(rows, cols, seed):
    x = Tensor(_random_array(seed, (rows, cols)), requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, 1.0)


@settings(max_examples=40, deadline=None)
@given(rows=_dims, cols=_dims, seed=st.integers(0, 2**16))
def test_add_commutes(rows, cols, seed):
    a = Tensor(_random_array(seed, (rows, cols)))
    b = Tensor(_random_array(seed + 1, (rows, cols)))
    assert np.allclose((a + b).data, (b + a).data)


@settings(max_examples=40, deadline=None)
@given(m=_dims, k=_dims, n=_dims, seed=st.integers(0, 2**16))
def test_matmul_matches_numpy(m, k, n, seed):
    a = _random_array(seed, (m, k))
    b = _random_array(seed + 1, (k, n))
    out = (Tensor(a) @ Tensor(b)).data
    assert np.allclose(out, a @ b, atol=1e-4)


@settings(max_examples=40, deadline=None)
@given(m=_dims, k=_dims, n=_dims, seed=st.integers(0, 2**16))
def test_matmul_gradient_shapes(m, k, n, seed):
    a = Tensor(_random_array(seed, (m, k)), requires_grad=True)
    b = Tensor(_random_array(seed + 1, (k, n)), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == a.shape
    assert b.grad.shape == b.shape


@settings(max_examples=40, deadline=None)
@given(rows=_dims, cols=st.integers(2, 8), seed=st.integers(0, 2**16))
def test_softmax_is_distribution(rows, cols, seed):
    x = Tensor(_random_array(seed, (rows, cols)) * 10)
    out = F.softmax(x).data
    assert (out >= 0).all()
    assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-4)


@settings(max_examples=40, deadline=None)
@given(rows=_dims, cols=st.integers(2, 8), seed=st.integers(0, 2**16))
def test_softmax_gradient_rows_sum_to_zero(rows, cols, seed):
    """d/dx of any function of softmax has zero row-sum gradient component
    only for linear functionals; here check the simplex-tangency property:
    the Jacobian-vector product with a constant vector is zero."""
    x = Tensor(_random_array(seed, (rows, cols)), requires_grad=True)
    F.softmax(x).sum().backward()
    # softmax rows sum to 1 regardless of x, so the gradient of their sum is 0.
    assert np.allclose(x.grad, 0.0, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(
    shape=st.tuples(_dims, _dims, _dims),
    seed=st.integers(0, 2**16),
)
def test_reshape_roundtrip_gradient(shape, seed):
    x = Tensor(_random_array(seed, shape), requires_grad=True)
    flat = int(np.prod(shape))
    y = x.reshape(flat).reshape(shape)
    (y * 2.0).sum().backward()
    assert np.allclose(x.grad, 2.0)


@settings(max_examples=40, deadline=None)
@given(rows=_dims, cols=_dims, seed=st.integers(0, 2**16))
def test_transpose_involution(rows, cols, seed):
    x = Tensor(_random_array(seed, (rows, cols)))
    assert np.array_equal(x.T.T.data, x.data)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 10), seed=st.integers(0, 2**16))
def test_cross_entropy_nonnegative(n, seed):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(n, 5)).astype(np.float32))
    targets = rng.integers(0, 5, size=n)
    assert F.cross_entropy(logits, targets).item() >= 0.0


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 8), seed=st.integers(0, 2**16))
def test_log_likelihood_upper_bound_zero(n, seed):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(1, n, 6)).astype(np.float32))
    targets = rng.integers(0, 6, size=(1, n))
    ll = F.sequence_log_likelihood(logits, targets)
    assert ll[0] <= 1e-6
