"""Algorithm 1 (HOI), HOSVD, and the mode-product algebra."""

import numpy as np
import pytest

from repro.decomposition import (
    best_rank_k_approximation,
    fold,
    hoi,
    hosvd,
    mode_product,
    multi_mode_product,
    relative_error,
    tucker2,
    unfold,
)
from repro.errors import DecompositionError


def _random_tensor(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


def _low_rank_tensor(shape, ranks, seed=0):
    """A tensor with exact multilinear rank ``ranks``."""
    rng = np.random.default_rng(seed)
    core = rng.normal(size=ranks)
    result = core
    for mode, dim in enumerate(shape):
        factor = rng.normal(size=(dim, ranks[mode]))
        result = mode_product(result, factor, mode)
    return result


class TestUnfoldFold:
    def test_round_trip_every_mode(self):
        tensor = _random_tensor((3, 4, 5))
        for mode in range(3):
            matrix = unfold(tensor, mode)
            assert matrix.shape == (tensor.shape[mode], tensor.size // tensor.shape[mode])
            assert np.array_equal(fold(matrix, mode, tensor.shape), tensor)

    def test_unfold_mode0_is_reshape(self):
        tensor = _random_tensor((3, 4, 5))
        assert np.array_equal(unfold(tensor, 0), tensor.reshape(3, 20))

    def test_invalid_mode_rejected(self):
        with pytest.raises(DecompositionError):
            unfold(_random_tensor((2, 2)), 5)


class TestModeProduct:
    def test_matches_einsum_mode0(self):
        tensor = _random_tensor((3, 4, 5))
        matrix = _random_tensor((7, 3), seed=1)
        got = mode_product(tensor, matrix, 0)
        expected = np.einsum("ij,jkl->ikl", matrix, tensor)
        assert np.allclose(got, expected)

    def test_matches_einsum_mode2(self):
        tensor = _random_tensor((3, 4, 5))
        matrix = _random_tensor((2, 5), seed=2)
        got = mode_product(tensor, matrix, 2)
        expected = np.einsum("ij,klj->kli", matrix, tensor)
        assert np.allclose(got, expected)

    def test_identity_matrix_is_noop(self):
        tensor = _random_tensor((3, 4, 5))
        assert np.allclose(mode_product(tensor, np.eye(4), 1), tensor)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DecompositionError):
            mode_product(_random_tensor((3, 4)), _random_tensor((2, 5)), 0)

    def test_matrix_mode_product_is_matmul(self):
        matrix = _random_tensor((4, 6))
        left = _random_tensor((3, 4), seed=1)
        assert np.allclose(mode_product(matrix, left, 0), left @ matrix)

    def test_multi_mode_skips_none(self):
        tensor = _random_tensor((3, 4))
        out = multi_mode_product(tensor, [None, np.eye(4)])
        assert np.allclose(out, tensor)


class TestHOSVD:
    def test_exact_at_full_rank(self):
        tensor = _random_tensor((4, 5, 3))
        result = hosvd(tensor, (4, 5, 3))
        assert result.error(tensor) < 1e-10

    def test_factor_orthonormality(self):
        tensor = _random_tensor((6, 7, 5))
        result = hosvd(tensor, (2, 3, 2))
        for factor in result.factors:
            gram = factor.T @ factor
            assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-10)

    def test_core_shape(self):
        result = hosvd(_random_tensor((6, 7, 5)), (2, 3, 4))
        assert result.ranks == (2, 3, 4)


class TestHOI:
    def test_recovers_exact_low_rank_tensor(self):
        tensor = _low_rank_tensor((8, 9, 7), (2, 3, 2))
        result = hoi(tensor, (2, 3, 2))
        assert result.error(tensor) < 1e-8

    def test_exact_at_full_rank(self):
        tensor = _random_tensor((4, 5, 3), seed=3)
        result = hoi(tensor, (4, 5, 3))
        assert result.error(tensor) < 1e-10

    def test_error_monotone_in_rank(self):
        tensor = _random_tensor((10, 10, 10), seed=4)
        errors = [hoi(tensor, (r, r, r)).error(tensor) for r in (1, 3, 5, 8, 10)]
        for lower, higher in zip(errors, errors[1:]):
            assert higher <= lower + 1e-12

    def test_factors_orthonormal(self):
        result = hoi(_random_tensor((8, 6, 7), seed=5), (3, 2, 3))
        for factor in result.factors:
            gram = factor.T @ factor
            assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-10)

    def test_converges_and_reports_history(self):
        result = hoi(_random_tensor((6, 6, 6), seed=6), (2, 2, 2))
        assert result.converged
        assert result.iterations >= 1
        assert len(result.fit_history) == result.iterations
        # Fit history is non-decreasing (alternating optimization property).
        fits = result.fit_history
        assert all(b >= a - 1e-9 for a, b in zip(fits, fits[1:]))

    def test_random_init_close_to_hosvd_init_quality(self):
        """HOI is a local method: random orthonormal init (the paper's
        Algorithm 1 line 1) may land in a slightly different optimum than
        the HOSVD warm start, but the fits must be close."""
        tensor = _random_tensor((8, 8, 8), seed=7)
        a = hoi(tensor, (3, 3, 3), init="hosvd").error(tensor)
        b = hoi(
            tensor, (3, 3, 3), init="random", rng=np.random.default_rng(0),
            max_iterations=100,
        ).error(tensor)
        assert abs(a - b) < 0.05

    def test_order4_tensor(self):
        tensor = _random_tensor((4, 3, 5, 2), seed=8)
        result = hoi(tensor, (2, 2, 2, 2))
        assert result.core.shape == (2, 2, 2, 2)
        assert 0.0 <= result.error(tensor) <= 1.0

    def test_parameters_accounting(self):
        result = hoi(_random_tensor((10, 12, 8), seed=9), (2, 3, 2))
        expected = 2 * 3 * 2 + 10 * 2 + 12 * 3 + 8 * 2
        assert result.parameters() == expected

    def test_rank_bounds_validated(self):
        with pytest.raises(DecompositionError):
            hoi(_random_tensor((4, 4)), (5, 1))
        with pytest.raises(DecompositionError):
            hoi(_random_tensor((4, 4)), (0, 1))

    def test_rank_count_validated(self):
        with pytest.raises(DecompositionError):
            hoi(_random_tensor((4, 4, 4)), (2, 2))

    def test_unknown_init_rejected(self):
        with pytest.raises(DecompositionError):
            hoi(_random_tensor((4, 4)), (2, 2), init="zeros")


class TestTucker2:
    def test_hoi_matches_optimal_svd_error(self):
        """For matrices, HOI converges to the truncated-SVD subspaces."""
        matrix = _random_tensor((20, 30), seed=10)
        u1, core, u2 = tucker2(matrix, 5, method="hoi")
        optimal = relative_error(matrix, best_rank_k_approximation(matrix, 5))
        got = relative_error(matrix, u1 @ core @ u2)
        assert got == pytest.approx(optimal, abs=1e-8)

    def test_svd_method_shapes(self):
        matrix = _random_tensor((12, 7), seed=11)
        u1, core, u2 = tucker2(matrix, 3, method="svd")
        assert u1.shape == (12, 3)
        assert core.shape == (3, 3)
        assert u2.shape == (3, 7)

    def test_full_rank_exact(self):
        matrix = _random_tensor((6, 9), seed=12)
        u1, core, u2 = tucker2(matrix, 6, method="hoi")
        assert relative_error(matrix, u1 @ core @ u2) < 1e-10

    def test_methods_agree(self):
        matrix = _random_tensor((15, 10), seed=13)
        for rank in (1, 4, 9):
            _, _, _ = tucker2(matrix, rank, method="svd")
            err_svd = relative_error(
                matrix, np.linalg.multi_dot(tucker2(matrix, rank, method="svd"))
            )
            err_hoi = relative_error(
                matrix, np.linalg.multi_dot(tucker2(matrix, rank, method="hoi"))
            )
            assert err_hoi == pytest.approx(err_svd, abs=1e-7)

    def test_rejects_tensors(self):
        with pytest.raises(DecompositionError):
            tucker2(_random_tensor((3, 3, 3)), 1)

    def test_unknown_method_rejected(self):
        with pytest.raises(DecompositionError):
            tucker2(_random_tensor((4, 4)), 2, method="cp")
