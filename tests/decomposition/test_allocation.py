"""Non-uniform rank allocation and the insight-driven recipe generator."""

import numpy as np
import pytest

from repro.decomposition import (
    DecompositionConfig,
    allocate_ranks,
    decompose_model,
    factorized_parameters,
    restore,
    suggest_layers,
    uniform_rank_for_budget,
)
from repro.errors import ConfigError, DecompositionError
from repro.models import LLAMA2_7B
from repro.models.params import parameter_reduction


class TestAllocateRanks:
    def test_budget_respected(self, micro_llama):
        allocation = allocate_ranks(micro_llama, [1, 2], ["w_q", "w_d"], budget=4000)
        assert allocation.parameters_used <= allocation.budget == 4000

    def test_all_targets_get_at_least_rank_one(self, micro_llama):
        allocation = allocate_ranks(micro_llama, [1], ["w_q", "w_k"], budget=2000)
        assert set(allocation.ranks) == {(1, "w_q"), (1, "w_k")}
        assert all(rank >= 1 for rank in allocation.ranks.values())

    def test_bigger_budget_more_energy(self, micro_llama):
        small = allocate_ranks(micro_llama, [1], ["w_q"], budget=300)
        large = allocate_ranks(micro_llama, [1], ["w_q"], budget=3000)
        assert large.retained_energy >= small.retained_energy
        assert max(large.ranks.values()) >= max(small.ranks.values())

    def test_energy_fraction_bounds(self, micro_llama):
        allocation = allocate_ranks(micro_llama, [1, 3], ["w_q", "w_v"], budget=3000)
        assert 0.0 < allocation.retained_energy <= 1.0

    def test_infeasible_budget_rejected(self, micro_llama):
        with pytest.raises(DecompositionError):
            allocate_ranks(micro_llama, [0, 1, 2, 3], ["w_q"], budget=10)

    def test_empty_targets_rejected(self, micro_llama):
        with pytest.raises(DecompositionError):
            allocate_ranks(micro_llama, [], ["w_q"], budget=100)

    def test_to_config_is_valid_and_applicable(self, micro_llama, micro_llama_config):
        allocation = allocate_ranks(micro_llama, [1, 2], ["w_q", "w_so"], budget=3000)
        config = allocation.to_config()
        config.validate(micro_llama_config)
        report = decompose_model(micro_llama, config)
        factorized = sum(t.factorized_parameters for t in report.tensors)
        assert factorized == allocation.parameters_used
        restore(micro_llama, report)

    def test_beats_uniform_allocation_on_energy(self, micro_llama):
        """At the same budget, greedy spectral allocation retains at least
        as much energy as the best uniform rank."""
        layers, roles = [1, 2, 3], ["w_q", "w_d"]
        budget = 6000
        greedy = allocate_ranks(micro_llama, layers, roles, budget)
        uniform = uniform_rank_for_budget(micro_llama, layers, roles, budget)

        from repro.decomposition.svd import singular_values

        total, kept = 0.0, 0.0
        for layer in layers:
            for role in roles:
                owner, attr = micro_llama.tensor_slot(layer, role)
                spectrum = singular_values(getattr(owner, attr).weight.data)
                total += float((spectrum**2).sum())
                kept += float((spectrum[:uniform] ** 2).sum())
        uniform_energy = kept / total
        assert greedy.retained_energy >= uniform_energy - 1e-9


class TestUniformRankForBudget:
    def test_matches_formula(self, micro_llama):
        budget = 5000
        rank = uniform_rank_for_budget(micro_llama, [1], ["w_q"], budget)
        height, width = 64, 64
        assert factorized_parameters(height, width, rank) <= budget
        assert factorized_parameters(height, width, rank + 1) > budget

    def test_infeasible(self, micro_llama):
        with pytest.raises(DecompositionError):
            uniform_rank_for_budget(micro_llama, [0, 1, 2], ["w_q"], budget=50)


class TestSuggestLayers:
    def test_reaches_target(self):
        layers = suggest_layers(LLAMA2_7B, 0.09)
        actual = parameter_reduction(LLAMA2_7B, layers, LLAMA2_7B.tensor_roles, 1)
        assert actual >= 0.09

    def test_respects_edge_avoidance_at_low_targets(self):
        layers = suggest_layers(LLAMA2_7B, 0.09, avoid_edges=2)
        assert 0 not in layers and 1 not in layers
        assert 31 not in layers and 30 not in layers

    def test_spreads_layers(self):
        layers = suggest_layers(LLAMA2_7B, 0.15)
        gaps = [b - a for a, b in zip(layers, layers[1:])]
        assert min(gaps) >= 2

    def test_high_target_uses_whole_stack(self):
        layers = suggest_layers(LLAMA2_7B, 0.95)
        assert len(layers) >= 30

    def test_invalid_target(self):
        with pytest.raises(ConfigError):
            suggest_layers(LLAMA2_7B, 0.0)

    def test_comparable_to_paper_recipe(self):
        """The generator's 9% set should match Table 4's size (3 layers)."""
        layers = suggest_layers(LLAMA2_7B, 0.09)
        assert len(layers) == 3
