"""γ configurations (Definitions 2-4), validity (Prop 3.1), and S_LR (Thm 3.2)."""

from dataclasses import replace

import pytest

from repro.decomposition import (
    DecompositionConfig,
    count_design_space,
    design_space_log2,
    design_space_size,
    enumerate_design_space,
    format_scale,
    model_design_space_size,
    pruned_design_space,
)
from repro.errors import ConfigError
from repro.models import LLAMA2_7B, get_config


class TestDecompositionConfig:
    def test_identity(self):
        config = DecompositionConfig.identity()
        assert config.is_identity
        assert list(config.pairs()) == []

    def test_layers_deduplicated_and_sorted(self):
        config = DecompositionConfig.uniform([5, 1, 5, 3], ["w_q"])
        assert config.layers == (1, 3, 5)

    def test_roles_preserve_order_dedupe(self):
        config = DecompositionConfig.uniform([0], ["w_v", "w_q", "w_v"])
        assert config.roles == ("w_v", "w_q")

    def test_all_tensors_constructor(self):
        config = DecompositionConfig.all_tensors(LLAMA2_7B, [2, 4])
        assert config.roles == LLAMA2_7B.tensor_roles
        assert len(list(config.pairs())) == 14

    def test_rank_for_with_override(self):
        config = DecompositionConfig(
            layers=(0, 1), roles=("w_q",), rank=2, ranks={(1, "w_q"): 7}
        )
        assert config.rank_for(0, "w_q") == 2
        assert config.rank_for(1, "w_q") == 7

    def test_pruned_rank_set_covers_pairs(self):
        config = DecompositionConfig.uniform([0, 2], ["w_q", "w_v"], rank=3)
        prs = config.pruned_rank_set()
        assert set(prs) == {(0, "w_q"), (0, "w_v"), (2, "w_q"), (2, "w_v")}
        assert all(rank == 3 for rank in prs.values())

    def test_nonpositive_rank_rejected(self):
        with pytest.raises(ConfigError):
            DecompositionConfig.uniform([0], ["w_q"], rank=0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            DecompositionConfig(layers=(0,), roles=("w_q",), method="pca")

    def test_describe_mentions_rank_and_layers(self):
        text = DecompositionConfig.uniform([1, 3], ["w_q"], rank=2).describe()
        assert "rank=2" in text and "1,3" in text


class TestValidity:
    def test_valid_config_passes(self):
        config = DecompositionConfig.all_tensors(LLAMA2_7B, [3, 17, 31])
        config.validate(LLAMA2_7B)
        assert config.is_valid(LLAMA2_7B)

    def test_layer_out_of_range(self):
        config = DecompositionConfig.uniform([32], ["w_q"])
        assert not config.is_valid(LLAMA2_7B)

    def test_role_not_in_family(self):
        config = DecompositionConfig.uniform([0], ["w_int"])
        assert not config.is_valid(LLAMA2_7B)

    def test_rank_above_tensor_rank(self):
        # w_q is 4096x4096: rank cap is 4096 (Definition 3).
        assert DecompositionConfig.uniform([0], ["w_q"], rank=4096).is_valid(LLAMA2_7B)
        assert not DecompositionConfig.uniform([0], ["w_q"], rank=4097).is_valid(LLAMA2_7B)

    def test_rank_capped_by_smallest_dimension(self):
        # w_g is 4096x11008: rank cap is min = 4096.
        assert not DecompositionConfig.uniform([0], ["w_g"], rank=5000).is_valid(LLAMA2_7B)

    def test_override_outside_pairs_rejected(self):
        config = DecompositionConfig(
            layers=(0,), roles=("w_q",), ranks={(1, "w_q"): 1}
        )
        assert not config.is_valid(LLAMA2_7B)

    def test_identity_always_valid(self):
        assert DecompositionConfig.identity().is_valid(LLAMA2_7B)
        assert DecompositionConfig.identity().is_valid(get_config("bert-base"))


class TestDesignSpaceSize:
    def test_theorem_formula(self):
        assert design_space_size(2, 2, 1) == (2**2 - 1) * (2**2 - 1) * 1 + 1

    def test_matches_brute_force_enumeration(self):
        """Theorem 3.2 equals exhaustive counting on small models."""
        config = replace(
            get_config("tiny-llama").with_vocab(10), n_layers=2
        )
        for n_ranks in (1, 2, 3):
            expected = design_space_size(2, config.n_tensors, n_ranks)
            counted = count_design_space(config, rank_choices=range(1, n_ranks + 1))
            assert counted == expected

    def test_enumeration_yields_identity_first(self):
        config = replace(get_config("tiny-llama").with_vocab(10), n_layers=1)
        first = next(enumerate_design_space(config, [1]))
        assert first.is_identity

    def test_enumeration_all_valid(self):
        config = replace(get_config("tiny-llama").with_vocab(10), n_layers=2)
        for gamma in enumerate_design_space(config, [1]):
            assert gamma.is_valid(config)

    def test_paper_table2_scales(self):
        """Table 2: O(2^18), O(2^30), O(2^37), O(2^85) with the paper's
        per-layer tensor counts (6 for BERT, 5 for Llama)."""
        assert round(design_space_log2(12, 6)) == 18
        assert round(design_space_log2(24, 6)) == 30
        assert round(design_space_log2(32, 5)) == 37
        assert round(design_space_log2(80, 5)) == 85

    def test_model_design_space_size_defaults_to_max_rank(self):
        config = get_config("bert-base")
        size = model_design_space_size(config)
        assert size == design_space_size(12, 6, 768)

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ConfigError):
            design_space_size(-1, 2, 1)

    def test_format_scale(self):
        assert format_scale(1) == "O(1)"
        assert format_scale(2**18) == "O(2^18)"


class TestPrunedSpace:
    def test_reduced_to_recipe_count(self):
        """Characterization collapses O(2^37) to O(#recipes) (Section 3.1)."""
        from repro.decomposition import PAPER_TABLE4, table4_layers

        layer_sets = [table4_layers(p) for p in sorted(PAPER_TABLE4)]
        space = pruned_design_space(LLAMA2_7B, layer_sets)
        assert len(space) == len(layer_sets) + 1  # + identity
        assert space[0].is_identity
        assert all(gamma.is_valid(LLAMA2_7B) for gamma in space)
        assert all(gamma.rank == 1 for gamma in space[1:])


class TestBitsAxis:
    def test_bit_choices_multiply_the_space(self):
        base = design_space_size(3, 2, 4)
        joint = design_space_size(3, 2, 4, bit_choices=3)
        assert joint - 1 == (base - 1) * 3

    def test_bits_validated_against_supported_widths(self):
        with pytest.raises(ConfigError, match="bits"):
            replace(DecompositionConfig.identity(), bits=7)
        assert replace(DecompositionConfig.identity(), bits=8).bits == 8

    def test_describe_mentions_bits(self):
        config = replace(DecompositionConfig.identity(), bits=4)
        assert "int4" in config.describe()

    def test_pruned_space_crosses_bit_widths(self):
        from repro.decomposition import table4_layers

        layer_sets = [table4_layers(33)]
        fp32_only = pruned_design_space(LLAMA2_7B, layer_sets)
        joint = pruned_design_space(
            LLAMA2_7B, layer_sets, bit_widths=(None, 8, 4)
        )
        # Each quantized width adds a dense-int point plus one point per
        # layer set; fp32 contributes no dense twin (identity is already
        # the first entry).
        assert len(fp32_only) == len(layer_sets) + 1
        assert len(joint) == 1 + len(layer_sets) + 2 * (len(layer_sets) + 1)
        bits_seen = {gamma.bits for gamma in joint}
        assert bits_seen == {None, 8, 4}
        dense_quant = [g for g in joint if g.is_identity and g.bits == 8]
        assert len(dense_quant) == 1
        assert all(gamma.is_valid(LLAMA2_7B) for gamma in joint)

    def test_bit_widths_deduplicated(self):
        space = pruned_design_space(LLAMA2_7B, [], bit_widths=(8, 8, None))
        assert len(space) == 2  # identity + dense-int8, no duplicates
