"""Definition 1: design-goal search (EDP under an accuracy constraint)."""

import pytest

from repro.decomposition import (
    DecompositionConfig,
    design_goal_search,
    table4_layers,
)
from repro.errors import ConfigError
from repro.models import LLAMA2_7B


def _candidates():
    configs = [DecompositionConfig.identity()]
    for target in (6, 21, 48):
        configs.append(
            DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(target), rank=1)
        )
    return configs


def _accuracy_table(drop_per_layer=0.01):
    """Synthetic accuracy: each decomposed layer costs ``drop_per_layer``."""

    def accuracy_fn(config):
        return 0.70 - drop_per_layer * len(config.layers)

    return accuracy_fn


class TestDesignGoalSearch:
    def test_picks_most_aggressive_feasible_config(self):
        result = design_goal_search(
            LLAMA2_7B,
            _candidates(),
            _accuracy_table(drop_per_layer=0.005),
            baseline_accuracy=0.70,
            tolerance=0.05,
        )
        assert result.satisfied
        # 6% recipe (2 layers, -1.0%) and 21% (7 layers, -3.5%) are feasible;
        # 48% (16 layers, -8%) is not.  EDP favors the biggest feasible cut.
        assert len(result.best.config.layers) == 7
        assert len(result.infeasible) == 1

    def test_tight_tolerance_selects_identity(self):
        result = design_goal_search(
            LLAMA2_7B,
            _candidates(),
            _accuracy_table(drop_per_layer=0.02),
            baseline_accuracy=0.70,
            tolerance=0.01,
        )
        assert result.satisfied
        assert result.best.config.is_identity

    def test_no_feasible_configuration(self):
        result = design_goal_search(
            LLAMA2_7B,
            _candidates()[1:],  # no identity fallback
            _accuracy_table(drop_per_layer=0.5),
            baseline_accuracy=0.70,
            tolerance=0.01,
        )
        assert not result.satisfied
        assert result.best is None
        assert len(result.infeasible) == 3

    def test_accuracy_gains_allowed(self):
        """Definition 1 clamps at zero: accuracy *gains* always satisfy τ."""
        result = design_goal_search(
            LLAMA2_7B,
            _candidates(),
            lambda config: 0.99,  # every config beats the baseline
            baseline_accuracy=0.70,
            tolerance=0.001,
        )
        assert result.satisfied
        assert len(result.feasible) == 4

    def test_edp_decreases_with_reduction(self):
        result = design_goal_search(
            LLAMA2_7B,
            _candidates(),
            _accuracy_table(0.0),
            baseline_accuracy=0.70,
            tolerance=0.5,
        )
        by_layers = sorted(result.feasible, key=lambda o: len(o.config.layers))
        edps = [o.energy_delay_product for o in by_layers]
        assert edps == sorted(edps, reverse=True)

    def test_invalid_tolerance(self):
        with pytest.raises(ConfigError):
            design_goal_search(
                LLAMA2_7B, _candidates(), _accuracy_table(), 0.7, tolerance=0.0
            )

    def test_invalid_candidate_rejected(self):
        bad = DecompositionConfig.uniform([99], ["w_q"])
        with pytest.raises(ConfigError):
            design_goal_search(
                LLAMA2_7B, [bad], _accuracy_table(), 0.7, tolerance=0.1
            )
