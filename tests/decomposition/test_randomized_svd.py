"""Randomized SVD against the exact factorization."""

import numpy as np
import pytest

from repro.decomposition import (
    best_rank_k_approximation,
    randomized_svd,
    relative_error,
    truncated_svd,
)
from repro.errors import DecompositionError


def _low_rank_plus_noise(shape, rank, noise=1e-3, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(shape[0], rank)) @ rng.normal(size=(rank, shape[1]))
    return base + noise * rng.normal(size=shape)


class TestRandomizedSVD:
    def test_shapes(self):
        matrix = np.random.default_rng(0).normal(size=(50, 30))
        u, s, vt = randomized_svd(matrix, 5)
        assert u.shape == (50, 5) and s.shape == (5,) and vt.shape == (5, 30)

    def test_orthonormal_left_factor(self):
        matrix = np.random.default_rng(1).normal(size=(40, 40))
        u, _, _ = randomized_svd(matrix, 6)
        assert np.allclose(u.T @ u, np.eye(6), atol=1e-10)

    def test_matches_exact_on_low_rank_matrix(self):
        matrix = _low_rank_plus_noise((60, 45), rank=4)
        u, s, vt = randomized_svd(matrix, 4, rng=np.random.default_rng(2))
        approx_error = relative_error(matrix, (u * s) @ vt)
        exact_error = relative_error(matrix, best_rank_k_approximation(matrix, 4))
        assert approx_error <= exact_error * 1.05 + 1e-6

    def test_singular_values_close_to_exact(self):
        matrix = _low_rank_plus_noise((80, 50), rank=6, noise=0.01, seed=3)
        _, s_exact, _ = truncated_svd(matrix, 6)
        _, s_rand, _ = randomized_svd(matrix, 6, rng=np.random.default_rng(4))
        assert np.allclose(s_rand, s_exact, rtol=0.02)

    def test_power_iterations_improve_hard_spectra(self):
        """On slowly decaying spectra, power iterations tighten the sketch."""
        rng = np.random.default_rng(5)
        u, _ = np.linalg.qr(rng.normal(size=(100, 100)))
        v, _ = np.linalg.qr(rng.normal(size=(100, 100)))
        spectrum = np.linspace(1.0, 0.5, 100)
        matrix = (u * spectrum) @ v.T
        errors = []
        for iters in (0, 3):
            uu, ss, vvt = randomized_svd(
                matrix, 10, oversampling=2, power_iterations=iters,
                rng=np.random.default_rng(6),
            )
            errors.append(relative_error(matrix, (uu * ss) @ vvt))
        assert errors[1] <= errors[0] + 1e-9

    def test_rank_bounds(self):
        matrix = np.zeros((5, 5))
        with pytest.raises(DecompositionError):
            randomized_svd(matrix, 0)
        with pytest.raises(DecompositionError):
            randomized_svd(matrix, 6)

    def test_non_matrix_rejected(self):
        with pytest.raises(DecompositionError):
            randomized_svd(np.zeros((2, 2, 2)), 1)
