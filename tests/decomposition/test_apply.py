"""Model surgery: decompose_model / restore / decomposed context manager."""

import numpy as np
import pytest

from repro.decomposition import (
    DecompositionConfig,
    decompose_model,
    decomposed,
    restore,
)
from repro.errors import ConfigError, DecompositionError
from repro.nn import FactorizedLinear, Linear


def _tokens(tokenizer, shape=(2, 8), seed=0):
    return np.random.default_rng(seed).integers(1, tokenizer.vocab_size, size=shape)


class TestDecomposeModel:
    def test_swaps_targeted_slots(self, micro_llama):
        config = DecompositionConfig.uniform([1], ["w_q", "w_d"], rank=1)
        decompose_model(micro_llama, config)
        owner, attr = micro_llama.tensor_slot(1, "w_q")
        assert isinstance(getattr(owner, attr), FactorizedLinear)
        owner, attr = micro_llama.tensor_slot(1, "w_d")
        assert isinstance(getattr(owner, attr), FactorizedLinear)
        owner, attr = micro_llama.tensor_slot(0, "w_q")
        assert isinstance(getattr(owner, attr), Linear)

    def test_report_parameter_accounting(self, micro_llama, micro_llama_config):
        before = micro_llama.num_parameters()
        config = DecompositionConfig.all_tensors(micro_llama_config, [2], rank=1)
        report = decompose_model(micro_llama, config)
        assert report.model_parameters_before == before
        assert report.model_parameters_after == micro_llama.num_parameters()
        assert report.parameters_saved > 0
        assert 0.0 < report.parameter_reduction < 1.0

    def test_report_matches_analytic_reduction(self, micro_llama, micro_llama_config):
        from repro.models.params import parameter_reduction

        config = DecompositionConfig.all_tensors(micro_llama_config, [1, 3], rank=1)
        report = decompose_model(micro_llama, config)
        analytic = parameter_reduction(
            micro_llama_config, [1, 3], micro_llama_config.tensor_roles, 1
        )
        assert report.parameter_reduction == pytest.approx(analytic, abs=1e-9)

    def test_per_tensor_reports(self, micro_llama, micro_llama_config):
        config = DecompositionConfig.uniform([0], ["w_q"], rank=2)
        report = decompose_model(micro_llama, config)
        (tensor_report,) = report.tensors
        assert tensor_report.layer == 0
        assert tensor_report.role == "w_q"
        assert tensor_report.rank == 2
        assert tensor_report.shape == (micro_llama_config.dim, micro_llama_config.dim)
        assert 0.0 <= tensor_report.reconstruction_error <= 1.0
        assert tensor_report.parameters_saved > 0

    def test_double_decomposition_rejected(self, micro_llama):
        config = DecompositionConfig.uniform([0], ["w_q"])
        decompose_model(micro_llama, config)
        with pytest.raises(DecompositionError):
            decompose_model(micro_llama, config)

    def test_invalid_config_rejected_before_surgery(self, micro_llama):
        config = DecompositionConfig.uniform([99], ["w_q"])
        with pytest.raises(ConfigError):
            decompose_model(micro_llama, config)
        owner, attr = micro_llama.tensor_slot(0, "w_q")
        assert isinstance(getattr(owner, attr), Linear)

    def test_forward_still_works_after_surgery(self, micro_llama, tokenizer, micro_llama_config):
        config = DecompositionConfig.all_tensors(micro_llama_config, [1], rank=1)
        decompose_model(micro_llama, config)
        logits = micro_llama(_tokens(tokenizer))
        assert np.isfinite(logits.data).all()

    def test_bert_surgery(self, micro_bert, micro_bert_config):
        config = DecompositionConfig.all_tensors(micro_bert_config, [1], rank=1)
        report = decompose_model(micro_bert, config)
        assert len(report.tensors) == 6

    def test_higher_rank_lower_error(self, micro_llama, micro_llama_config):
        low = decompose_model(
            micro_llama, DecompositionConfig.uniform([0], ["w_q"], rank=1)
        )
        restore(micro_llama, low)
        high = decompose_model(
            micro_llama, DecompositionConfig.uniform([0], ["w_q"], rank=32)
        )
        assert high.tensors[0].reconstruction_error < low.tensors[0].reconstruction_error

    def test_svd_method_surgery(self, micro_llama, micro_llama_config):
        """γ.method='svd' routes through the closed-form factorization and
        yields the same subspace quality as HOI."""
        hoi_report = decompose_model(
            micro_llama, DecompositionConfig.uniform([0], ["w_q"], rank=2, method="hoi")
        )
        hoi_error = hoi_report.tensors[0].reconstruction_error
        restore(micro_llama, hoi_report)
        svd_report = decompose_model(
            micro_llama, DecompositionConfig.uniform([0], ["w_q"], rank=2, method="svd")
        )
        assert svd_report.tensors[0].reconstruction_error == pytest.approx(
            hoi_error, abs=1e-6
        )

    def test_summary_readable(self, micro_llama, micro_llama_config):
        config = DecompositionConfig.all_tensors(micro_llama_config, [1], rank=1)
        report = decompose_model(micro_llama, config)
        text = report.summary()
        assert "reduction" in text and "tensors" in text


class TestRestore:
    def test_bit_exact_restoration(self, micro_llama, tokenizer, micro_llama_config):
        tokens = _tokens(tokenizer)
        before = micro_llama(tokens).data.copy()
        config = DecompositionConfig.all_tensors(micro_llama_config, [0, 2], rank=1)
        report = decompose_model(micro_llama, config)
        during = micro_llama(tokens).data.copy()
        restore(micro_llama, report)
        after = micro_llama(tokens).data
        assert np.array_equal(before, after)
        assert not np.allclose(before, during, atol=1e-3)

    def test_restore_without_decomposition_rejected(self, micro_llama, micro_llama_config):
        config = DecompositionConfig.uniform([0], ["w_q"])
        report = decompose_model(micro_llama, config)
        restore(micro_llama, report)
        with pytest.raises(DecompositionError):
            restore(micro_llama, report)

    def test_parameter_count_restored(self, micro_llama, micro_llama_config):
        before = micro_llama.num_parameters()
        config = DecompositionConfig.all_tensors(micro_llama_config, [1], rank=1)
        report = decompose_model(micro_llama, config)
        restore(micro_llama, report)
        assert micro_llama.num_parameters() == before


class TestContextManager:
    def test_restores_on_exit(self, micro_llama, tokenizer, micro_llama_config):
        tokens = _tokens(tokenizer)
        before = micro_llama(tokens).data.copy()
        config = DecompositionConfig.all_tensors(micro_llama_config, [1], rank=1)
        with decomposed(micro_llama, config) as report:
            assert report.parameters_saved > 0
        assert np.array_equal(micro_llama(tokens).data, before)

    def test_restores_on_exception(self, micro_llama, tokenizer, micro_llama_config):
        tokens = _tokens(tokenizer)
        before = micro_llama(tokens).data.copy()
        config = DecompositionConfig.all_tensors(micro_llama_config, [1], rank=1)
        with pytest.raises(RuntimeError, match="boom"):
            with decomposed(micro_llama, config):
                raise RuntimeError("boom")
        assert np.array_equal(micro_llama(tokens).data, before)
