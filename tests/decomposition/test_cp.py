"""CP/ALS decomposition baseline."""

import numpy as np
import pytest

from repro.decomposition import (
    best_rank_k_approximation,
    cp_als,
    cp_matrix,
    cp_parameters,
    khatri_rao,
    relative_error,
)
from repro.errors import DecompositionError


def _cp_tensor(shape, rank, seed=0):
    """A tensor with exact CP rank ``rank``."""
    rng = np.random.default_rng(seed)
    factors = [rng.normal(size=(dim, rank)) for dim in shape]
    first = factors[0]
    rest = khatri_rao(factors[1:])
    return (first @ rest.T).reshape(shape)


class TestKhatriRao:
    def test_shape(self):
        a = np.ones((3, 2))
        b = np.ones((4, 2))
        assert khatri_rao([a, b]).shape == (12, 2)

    def test_columnwise_kronecker(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(3, 2)), rng.normal(size=(4, 2))
        out = khatri_rao([a, b])
        for col in range(2):
            assert np.allclose(out[:, col], np.kron(a[:, col], b[:, col]))

    def test_mismatched_ranks_rejected(self):
        with pytest.raises(DecompositionError):
            khatri_rao([np.ones((2, 2)), np.ones((2, 3))])

    def test_empty_rejected(self):
        with pytest.raises(DecompositionError):
            khatri_rao([])


class TestCPALS:
    def test_recovers_exact_cp_tensor(self):
        tensor = _cp_tensor((8, 7, 6), rank=2, seed=1)
        result = cp_als(tensor, rank=2, max_iterations=200)
        assert result.error(tensor) < 1e-5

    def test_matrix_cp_matches_svd_error(self):
        matrix = np.random.default_rng(2).normal(size=(12, 9))
        result = cp_als(matrix, rank=3, max_iterations=300)
        optimal = relative_error(matrix, best_rank_k_approximation(matrix, 3))
        assert result.error(matrix) == pytest.approx(optimal, abs=1e-3)

    def test_error_decreases_with_rank(self):
        tensor = np.random.default_rng(3).normal(size=(6, 6, 6))
        errors = [
            cp_als(tensor, rank=r, max_iterations=150).error(tensor)
            for r in (1, 3, 6)
        ]
        assert errors[0] >= errors[1] >= errors[2] - 1e-6

    def test_parameters_accounting(self):
        result = cp_als(np.random.default_rng(4).normal(size=(5, 6, 7)), rank=2,
                        max_iterations=5)
        assert result.parameters() == 2 + 2 * (5 + 6 + 7)

    def test_order4(self):
        tensor = _cp_tensor((4, 3, 5, 2), rank=1, seed=5)
        result = cp_als(tensor, rank=1, max_iterations=100)
        assert result.error(tensor) < 1e-5

    def test_invalid_rank(self):
        with pytest.raises(DecompositionError):
            cp_als(np.zeros((3, 3)), rank=0)

    def test_invalid_order(self):
        with pytest.raises(DecompositionError):
            cp_als(np.zeros(5), rank=1)


class TestCPMatrix:
    def test_closed_form_optimal(self):
        matrix = np.random.default_rng(6).normal(size=(10, 8))
        a, s, b = cp_matrix(matrix, 3)
        approx = a @ np.diag(s) @ b.T
        optimal = best_rank_k_approximation(matrix, 3)
        assert np.allclose(approx, optimal, atol=1e-10)

    def test_rejects_tensor(self):
        with pytest.raises(DecompositionError):
            cp_matrix(np.zeros((2, 2, 2)), 1)


class TestCPParameters:
    def test_formula(self):
        assert cp_parameters((10, 20), 3) == 3 + 3 * 30

    def test_cp_beats_tucker_core_overhead_at_matched_rank(self):
        """At the same rank, CP stores r fewer... more precisely no r^2 core."""
        from repro.decomposition import factorized_parameters

        h, w, r = 64, 176, 8
        assert cp_parameters((h, w), r) < factorized_parameters(h, w, r) + r

    def test_invalid(self):
        with pytest.raises(DecompositionError):
            cp_parameters((0, 5), 1)
