"""Table 4 recipes and layer-placement heuristics."""

import pytest

from repro.decomposition import (
    PAPER_TABLE4,
    consecutive_layers,
    scale_recipe,
    scaled_table4,
    spread_layers,
    strided_layers,
    table4_layers,
)
from repro.errors import ConfigError
from repro.models import LLAMA2_7B
from repro.models.params import parameter_reduction


class TestTable4:
    @pytest.mark.parametrize("target", sorted(PAPER_TABLE4))
    def test_recipes_hit_their_reduction_targets(self, target):
        """The headline check: each Table 4 layer set actually produces the
        parameter-reduction percentage the paper lists for it (rank 1, all
        tensors, Llama-2-7B)."""
        layers = table4_layers(target)
        actual = parameter_reduction(LLAMA2_7B, layers, LLAMA2_7B.tensor_roles, 1)
        assert abs(100 * actual - target) < 0.6

    def test_zero_vs_one_based(self):
        assert table4_layers(6, zero_based=False) == (3, 30)
        assert table4_layers(6) == (2, 29)

    def test_low_reduction_recipes_avoid_sensitive_layers(self):
        """Section 3.3.3 insight: recipes under 50% avoid layers 1-2."""
        for target in (6, 9, 15, 21, 33):
            layers = table4_layers(target, zero_based=False)
            assert 1 not in layers
            assert 2 not in layers

    def test_96_percent_decomposes_everything(self):
        assert table4_layers(96, zero_based=False) == tuple(range(1, 33))

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigError):
            table4_layers(50)


class TestScaleRecipe:
    def test_identity_at_32_layers(self):
        for target, layers in PAPER_TABLE4.items():
            scaled = scale_recipe(layers, 32)
            assert scaled == tuple(l - 1 for l in layers)

    def test_endpoints_map_to_endpoints(self):
        assert scale_recipe((1,), 12) == (0,)
        assert scale_recipe((32,), 12) == (11,)

    def test_monotone_and_in_range(self):
        for n_layers in (8, 12, 16, 24):
            for layers in PAPER_TABLE4.values():
                scaled = scale_recipe(layers, n_layers)
                assert all(0 <= l < n_layers for l in scaled)
                assert list(scaled) == sorted(set(scaled))

    def test_scaled_table_has_all_targets(self):
        table = scaled_table4(12)
        assert set(table) == set(PAPER_TABLE4)

    def test_scaled_reductions_monotone_below_saturation(self):
        """Up to the 48% recipe, more aggressive targets never decompose
        fewer layers.  Beyond that a 12-layer model saturates (all recipes
        collapse to nearly every layer), mirroring the paper's observation
        that accuracy loss tapers past 48% reduction."""
        table = scaled_table4(12)
        sizes = [len(table[t]) for t in sorted(table) if t <= 48]
        assert sizes == sorted(sizes)
        assert len(table[96]) == 12

    def test_invalid_layer_count(self):
        with pytest.raises(ConfigError):
            scale_recipe((1, 2), 0)


class TestPlacementHelpers:
    def test_spread_layers_endpoints(self):
        assert spread_layers(12, 2) == (0, 11)

    def test_spread_layers_avoid_edges(self):
        layers = spread_layers(12, 3, avoid_edges=2)
        assert min(layers) >= 2
        assert max(layers) <= 9

    def test_spread_layers_count(self):
        for count in range(1, 9):
            assert len(spread_layers(12, count, avoid_edges=1)) == count

    def test_spread_layers_zero(self):
        assert spread_layers(12, 0) == ()

    def test_spread_too_many_rejected(self):
        with pytest.raises(ConfigError):
            spread_layers(4, 5)

    def test_spread_layers_maximize_min_gap(self):
        layers = spread_layers(12, 4)
        gaps = [b - a for a, b in zip(layers, layers[1:])]
        assert min(gaps) >= 3

    def test_consecutive_layers(self):
        assert consecutive_layers(3, 4, 12) == (3, 4, 5, 6)

    def test_consecutive_out_of_range(self):
        with pytest.raises(ConfigError):
            consecutive_layers(10, 4, 12)

    def test_strided_layers(self):
        assert strided_layers(12, 3, offset=1) == (1, 4, 7, 10)

    def test_strided_stride_one_is_all(self):
        assert strided_layers(5, 1) == (0, 1, 2, 3, 4)

    def test_strided_invalid(self):
        with pytest.raises(ConfigError):
            strided_layers(12, 0)
