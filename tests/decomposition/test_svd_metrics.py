"""Truncated SVD primitives and the compression arithmetic of Section 2.3."""

import math

import numpy as np
import pytest

from repro.decomposition import (
    best_rank_k_approximation,
    breakeven_rank,
    compression_ratio,
    dense_parameters,
    effective_rank,
    factorized_parameters,
    relative_error,
    saves_memory,
    singular_values,
    truncated_svd,
)
from repro.errors import DecompositionError


class TestTruncatedSVD:
    def test_shapes(self):
        matrix = np.random.default_rng(0).normal(size=(8, 5))
        u, s, vt = truncated_svd(matrix, 3)
        assert u.shape == (8, 3) and s.shape == (3,) and vt.shape == (3, 5)

    def test_singular_values_descending(self):
        matrix = np.random.default_rng(1).normal(size=(10, 10))
        _, s, _ = truncated_svd(matrix, 6)
        assert np.all(np.diff(s) <= 1e-12)

    def test_orthonormal_u(self):
        matrix = np.random.default_rng(2).normal(size=(9, 6))
        u, _, _ = truncated_svd(matrix, 4)
        assert np.allclose(u.T @ u, np.eye(4), atol=1e-12)

    def test_full_rank_reconstructs(self):
        matrix = np.random.default_rng(3).normal(size=(5, 7))
        u, s, vt = truncated_svd(matrix, 5)
        assert np.allclose((u * s) @ vt, matrix, atol=1e-10)

    def test_eckart_young_optimality(self):
        """Truncated SVD beats any random rank-k factorization."""
        rng = np.random.default_rng(4)
        matrix = rng.normal(size=(12, 12))
        best = relative_error(matrix, best_rank_k_approximation(matrix, 3))
        for seed in range(5):
            r = np.random.default_rng(seed)
            guess = r.normal(size=(12, 3)) @ r.normal(size=(3, 12))
            assert relative_error(matrix, guess) >= best - 1e-12

    def test_rank_bounds(self):
        matrix = np.zeros((4, 6))
        with pytest.raises(DecompositionError):
            truncated_svd(matrix, 0)
        with pytest.raises(DecompositionError):
            truncated_svd(matrix, 5)

    def test_non_matrix_rejected(self):
        with pytest.raises(DecompositionError):
            truncated_svd(np.zeros((2, 2, 2)), 1)


class TestEffectiveRank:
    def test_exact_low_rank(self):
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(20, 3)) @ rng.normal(size=(3, 20))
        assert effective_rank(matrix, energy=0.999999) == 3

    def test_full_energy_needs_more_rank_than_partial(self):
        matrix = np.random.default_rng(6).normal(size=(30, 30))
        assert effective_rank(matrix, 0.5) <= effective_rank(matrix, 0.99)

    def test_invalid_energy(self):
        with pytest.raises(DecompositionError):
            effective_rank(np.eye(3), energy=0.0)


class TestCompressionArithmetic:
    def test_factorized_parameters_formula(self):
        assert factorized_parameters(100, 200, 5) == 100 * 5 + 25 + 5 * 200

    def test_compression_ratio_rank1_large_matrix(self):
        ratio = compression_ratio(4096, 4096, 1)
        assert ratio == pytest.approx(4096 * 4096 / (4096 + 1 + 4096))

    def test_breakeven_bound_is_tight(self):
        """Just below breakeven saves memory; just above does not."""
        height, width = 64, 176
        bound = breakeven_rank(height, width)
        below, above = math.floor(bound), math.ceil(bound + 1e-9)
        assert saves_memory(height, width, below)
        assert not saves_memory(height, width, above)

    def test_breakeven_matches_paper_formula(self):
        height, width = 128, 96
        expected = (math.sqrt((height + width) ** 2 + 4 * height * width) - (height + width)) / 2
        assert breakeven_rank(height, width) == pytest.approx(expected)

    def test_dense_parameters(self):
        assert dense_parameters(7, 9) == 63

    def test_invalid_dims_rejected(self):
        with pytest.raises(DecompositionError):
            factorized_parameters(0, 5, 1)
        with pytest.raises(DecompositionError):
            factorized_parameters(5, 5, 0)


class TestRelativeError:
    def test_zero_for_identical(self):
        matrix = np.random.default_rng(7).normal(size=(4, 4))
        assert relative_error(matrix, matrix) == 0.0

    def test_scale_invariance(self):
        matrix = np.random.default_rng(8).normal(size=(5, 5))
        approx = matrix + 0.1
        a = relative_error(matrix, approx)
        b = relative_error(10 * matrix, 10 * approx)
        assert a == pytest.approx(b)

    def test_zero_matrix_conventions(self):
        zero = np.zeros((3, 3))
        assert relative_error(zero, zero) == 0.0
        assert relative_error(zero, np.ones((3, 3))) == math.inf

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DecompositionError):
            relative_error(np.zeros((2, 2)), np.zeros((3, 3)))
