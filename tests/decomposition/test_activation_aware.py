"""Activation-aware (ASVD-style) decomposition."""

import numpy as np
import pytest

from repro.decomposition import (
    DecompositionConfig,
    activation_aware_tucker2,
    best_rank_k_approximation,
    collect_input_scales,
    decompose_model_activation_aware,
    output_error,
    restore,
    tucker2,
)
from repro.errors import DecompositionError


def _skewed_problem(seed=0, in_features=32, out_features=24, skew=50.0):
    """A weight matrix plus activations whose channels differ wildly in
    scale — the regime where whitening provably helps."""
    rng = np.random.default_rng(seed)
    weight = rng.normal(size=(in_features, out_features))
    channel_scales = np.logspace(0, np.log10(skew), in_features)
    activations = rng.normal(size=(256, in_features)) * channel_scales[None, :]
    return weight, activations, channel_scales


class TestActivationAwareTucker2:
    def test_shapes(self):
        weight, _, scales = _skewed_problem()
        u1, core, u2 = activation_aware_tucker2(weight, 3, scales)
        assert u1.shape == (32, 3)
        assert core.shape == (3, 3)
        assert u2.shape == (3, 24)

    def test_uniform_scales_match_plain_svd(self):
        weight, _, _ = _skewed_problem()
        u1, core, u2 = activation_aware_tucker2(weight, 4, np.ones(32))
        aware = u1 @ core @ u2
        plain = best_rank_k_approximation(weight, 4)
        assert np.allclose(aware, plain, atol=1e-8)

    def test_lower_output_error_than_plain_on_skewed_activations(self):
        """The point of the method: on skewed activations, the whitened
        factorization reduces *output* error versus plain Tucker-2."""
        weight, activations, channel_scales = _skewed_problem(seed=1)
        scales = np.abs(activations).mean(axis=0)
        for rank in (1, 2, 4):
            u1, core, u2 = activation_aware_tucker2(weight, rank, scales)
            aware_err = output_error(weight, u1 @ core @ u2, activations)
            p1, pc, p2 = tucker2(weight, rank, method="svd")
            plain_err = output_error(weight, p1 @ pc @ p2, activations)
            assert aware_err < plain_err

    def test_full_rank_exact(self):
        weight, _, scales = _skewed_problem(seed=2)
        u1, core, u2 = activation_aware_tucker2(weight, 24, scales)
        assert np.allclose(u1 @ core @ u2, weight, atol=1e-8)

    def test_scale_shape_validated(self):
        weight, _, _ = _skewed_problem()
        with pytest.raises(DecompositionError):
            activation_aware_tucker2(weight, 2, np.ones(5))

    def test_negative_scales_rejected(self):
        weight, _, _ = _skewed_problem()
        with pytest.raises(DecompositionError):
            activation_aware_tucker2(weight, 2, -np.ones(32))


class TestCollectInputScales:
    def test_records_all_targets(self, trained_llama):
        model, tokenizer = trained_llama
        from repro.experiments import get_corpus

        targets = [(3, "w_q"), (5, "w_d")]
        scales = collect_input_scales(
            model, tokenizer, list(get_corpus()[:16]), targets
        )
        assert set(scales) == set(targets)
        assert scales[(3, "w_q")].shape == (64,)
        assert scales[(5, "w_d")].shape == (176,)
        assert np.all(scales[(3, "w_q")] >= 0)

    def test_model_restored_after_recording(self, trained_llama):
        from repro.nn import Linear

        model, tokenizer = trained_llama
        from repro.experiments import get_corpus

        collect_input_scales(model, tokenizer, list(get_corpus()[:8]), [(2, "w_v")])
        owner, attr = model.tensor_slot(2, "w_v")
        assert isinstance(getattr(owner, attr), Linear)

    def test_empty_calibration_rejected(self, trained_llama):
        model, tokenizer = trained_llama
        with pytest.raises(DecompositionError):
            collect_input_scales(model, tokenizer, [], [(0, "w_q")])


class TestDecomposeActivationAware:
    def test_surgery_and_restore(self, trained_llama):
        model, tokenizer = trained_llama
        from repro.experiments import get_corpus

        tokens = np.random.default_rng(0).integers(1, tokenizer.vocab_size, size=(1, 6))
        before = model(tokens).data.copy()
        config = DecompositionConfig.all_tensors(model.config, (4,), rank=2)
        report = decompose_model_activation_aware(
            model, config, tokenizer, list(get_corpus()[:16])
        )
        assert report.parameters_saved > 0
        assert len(report.tensors) == 7
        restore(model, report)
        assert np.array_equal(model(tokens).data, before)

    def test_weight_space_error_worse_but_output_better(self, trained_llama):
        """Activation-aware factors are *worse* in plain weight-space error
        (they optimize a different objective) yet better or equal on model
        perplexity is plausible; here we verify the weight-space ordering,
        the mathematically guaranteed direction."""
        model, tokenizer = trained_llama
        from repro.experiments import get_corpus

        owner, attr = model.tensor_slot(5, "w_q")
        weight = getattr(owner, attr).weight.data
        scales = collect_input_scales(
            model, tokenizer, list(get_corpus()[:16]), [(5, "w_q")]
        )[(5, "w_q")]
        u1, core, u2 = activation_aware_tucker2(weight, 2, scales)
        aware_weight_err = float(np.linalg.norm(weight - u1 @ core @ u2))
        p1, pc, p2 = tucker2(weight, 2, method="svd")
        plain_weight_err = float(np.linalg.norm(weight - p1 @ pc @ p2))
        assert plain_weight_err <= aware_weight_err + 1e-9
