"""Property-based tests on the decomposition core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition import (
    breakeven_rank,
    compression_ratio,
    factorized_parameters,
    hoi,
    relative_error,
    saves_memory,
    tucker2,
    unfold,
    fold,
    mode_product,
)

_dim = st.integers(min_value=2, max_value=10)
_seed = st.integers(0, 2**16)


@settings(max_examples=25, deadline=None)
@given(a=_dim, b=_dim, c=_dim, seed=_seed)
def test_unfold_fold_roundtrip(a, b, c, seed):
    tensor = np.random.default_rng(seed).normal(size=(a, b, c))
    for mode in range(3):
        assert np.array_equal(fold(unfold(tensor, mode), mode, tensor.shape), tensor)


@settings(max_examples=25, deadline=None)
@given(a=_dim, b=_dim, seed=_seed)
def test_tucker2_error_bounded_by_one(a, b, seed):
    matrix = np.random.default_rng(seed).normal(size=(a, b))
    u1, core, u2 = tucker2(matrix, 1)
    err = relative_error(matrix, u1 @ core @ u2)
    assert 0.0 <= err <= 1.0 + 1e-9


@settings(max_examples=20, deadline=None)
@given(a=st.integers(3, 8), b=st.integers(3, 8), seed=_seed)
def test_tucker2_error_monotone_in_rank(a, b, seed):
    matrix = np.random.default_rng(seed).normal(size=(a, b))
    max_rank = min(a, b)
    errors = []
    for rank in range(1, max_rank + 1):
        u1, core, u2 = tucker2(matrix, rank, method="svd")
        errors.append(relative_error(matrix, u1 @ core @ u2))
    assert all(later <= earlier + 1e-10 for earlier, later in zip(errors, errors[1:]))
    assert errors[-1] < 1e-8  # full rank is exact


@settings(max_examples=20, deadline=None)
@given(a=st.integers(3, 6), b=st.integers(3, 6), c=st.integers(3, 6), seed=_seed)
def test_hoi_core_norm_bounded_by_tensor_norm(a, b, c, seed):
    """With orthonormal factors, ||core|| <= ||T|| (projection property)."""
    tensor = np.random.default_rng(seed).normal(size=(a, b, c))
    result = hoi(tensor, (2, 2, 2))
    assert np.linalg.norm(result.core) <= np.linalg.norm(tensor) + 1e-9


@settings(max_examples=30, deadline=None)
@given(h=st.integers(2, 500), w=st.integers(2, 500), r=st.integers(1, 40))
def test_compression_consistency(h, w, r):
    """compression_ratio > 1 <=> saves_memory <=> rank below breakeven."""
    ratio = compression_ratio(h, w, r)
    saves = saves_memory(h, w, r)
    assert (ratio > 1.0) == saves
    assert saves == (r < breakeven_rank(h, w))


@settings(max_examples=30, deadline=None)
@given(h=st.integers(1, 300), w=st.integers(1, 300), r=st.integers(1, 50))
def test_factorized_parameters_positive_and_exact(h, w, r):
    params = factorized_parameters(h, w, r)
    assert params == h * r + r * r + r * w


@settings(max_examples=20, deadline=None)
@given(a=_dim, b=_dim, rows=_dim, seed=_seed)
def test_mode_product_linearity(a, b, rows, seed):
    rng = np.random.default_rng(seed)
    tensor = rng.normal(size=(a, b))
    m1 = rng.normal(size=(rows, a))
    m2 = rng.normal(size=(rows, a))
    left = mode_product(tensor, m1 + m2, 0)
    right = mode_product(tensor, m1, 0) + mode_product(tensor, m2, 0)
    assert np.allclose(left, right, atol=1e-10)
