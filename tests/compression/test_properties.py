"""Property-based tests for the compression baselines."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    csr_bytes,
    dequantize_weight,
    magnitude_mask,
    quantize_weight,
    quantized_weight_bytes,
)

_dim = st.integers(min_value=1, max_value=32)
_seed = st.integers(0, 2**16)


@settings(max_examples=40, deadline=None)
@given(h=_dim, w=_dim, seed=_seed, bits=st.sampled_from([2, 3, 4, 8]))
def test_quantization_error_bounded_by_half_step(h, w, seed, bits):
    """Rounding error per weight is at most half a quantization step."""
    weight = np.random.default_rng(seed).normal(size=(h, w)).astype(np.float32)
    grid, scales = quantize_weight(weight, bits)
    restored = dequantize_weight(grid, scales)
    step = scales[None, :]
    assert np.all(np.abs(restored - weight) <= 0.5 * step + 1e-6)


@settings(max_examples=40, deadline=None)
@given(h=_dim, w=_dim, seed=_seed)
def test_quantization_preserves_sign_of_large_weights(h, w, seed):
    weight = np.random.default_rng(seed).normal(size=(h, w)).astype(np.float32)
    grid, scales = quantize_weight(weight, 8)
    restored = dequantize_weight(grid, scales)
    big = np.abs(weight) > scales[None, :]
    assert np.all(np.sign(restored[big]) == np.sign(weight[big]))


@settings(max_examples=40, deadline=None)
@given(h=st.integers(2, 64), w=st.integers(2, 64), bits=st.sampled_from([2, 4, 8]))
def test_quantized_bytes_below_fp16(h, w, bits):
    assert quantized_weight_bytes((h, w), bits) < h * w * 2 + w * 2 + 1


@settings(max_examples=40, deadline=None)
@given(
    h=st.integers(2, 24),
    w=st.integers(2, 24),
    seed=_seed,
    sparsity=st.floats(0.0, 0.95),
)
def test_magnitude_mask_keeps_target_fraction(h, w, seed, sparsity):
    weight = np.random.default_rng(seed).normal(size=(h, w))
    mask = magnitude_mask(weight, sparsity)
    expected_keep = weight.size - int(round(sparsity * weight.size))
    assert abs(int(mask.sum()) - expected_keep) <= max(2, int(0.02 * weight.size))


@settings(max_examples=40, deadline=None)
@given(h=st.integers(2, 24), w=st.integers(2, 24), seed=_seed)
def test_magnitude_mask_keeps_largest(h, w, seed):
    """No pruned weight may exceed a kept weight in magnitude."""
    weight = np.random.default_rng(seed).normal(size=(h, w))
    mask = magnitude_mask(weight, 0.5)
    kept = np.abs(weight[mask])
    pruned = np.abs(weight[~mask])
    if kept.size and pruned.size:
        assert pruned.max() <= kept.min() + 1e-9


@settings(max_examples=30, deadline=None)
@given(h=st.integers(2, 100), w=st.integers(2, 100), density=st.floats(0.01, 1.0))
def test_csr_bytes_monotone_in_density(h, w, density):
    assert csr_bytes((h, w), density) <= csr_bytes((h, w), min(density * 1.5, 1.0)) + 1e-9
