"""Magnitude-pruning baseline."""

import numpy as np
import pytest

from repro.compression import (
    csr_bytes,
    magnitude_mask,
    prune_model_weights,
    restore_pruned,
)
from repro.errors import DecompositionError


class TestMagnitudeMask:
    def test_keeps_largest(self):
        weight = np.array([[1.0, -5.0], [0.1, 3.0]])
        mask = magnitude_mask(weight, sparsity=0.5)
        assert mask.sum() == 2
        assert mask[0, 1] and mask[1, 1]

    def test_zero_sparsity_keeps_all(self):
        weight = np.ones((4, 4))
        assert magnitude_mask(weight, 0.0).all()

    def test_exact_fraction(self):
        weight = np.random.default_rng(0).normal(size=(20, 20))
        mask = magnitude_mask(weight, sparsity=0.3)
        assert mask.sum() == pytest.approx(0.7 * 400, abs=1)

    def test_invalid_sparsity(self):
        with pytest.raises(DecompositionError):
            magnitude_mask(np.ones((2, 2)), 1.0)


class TestCSRBytes:
    def test_moderate_sparsity_saves_nothing(self):
        """At 50% density, CSR (value + index) costs as much as dense FP16."""
        dense = 100 * 100 * 2
        assert csr_bytes((100, 100), density=0.5) >= dense * 0.95

    def test_high_sparsity_saves(self):
        dense = 100 * 100 * 2
        assert csr_bytes((100, 100), density=0.1) < dense * 0.3


class TestPruneModel:
    def test_in_place_and_restorable(self, micro_llama, tokenizer):
        tokens = np.random.default_rng(0).integers(1, tokenizer.vocab_size, size=(1, 6))
        before = micro_llama(tokens).data.copy()
        report = prune_model_weights(micro_llama, [0, 1], ["w_q"], sparsity=0.5)
        during = micro_llama(tokens).data.copy()
        assert not np.array_equal(before, during)
        restore_pruned(micro_llama, report)
        assert np.array_equal(micro_llama(tokens).data, before)

    def test_achieved_density(self, micro_llama):
        report = prune_model_weights(micro_llama, [0], ["w_q"], sparsity=0.75)
        assert report.actual_density == pytest.approx(0.25, abs=0.02)
        restore_pruned(micro_llama, report)

    def test_weights_actually_zeroed(self, micro_llama):
        report = prune_model_weights(micro_llama, [1], ["w_d"], sparsity=0.9)
        owner, attr = micro_llama.tensor_slot(1, "w_d")
        weight = getattr(owner, attr).weight.data
        assert (weight == 0.0).mean() == pytest.approx(0.9, abs=0.02)
        restore_pruned(micro_llama, report)

    def test_memory_reduction_negative_at_low_sparsity(self, micro_llama):
        """CSR overhead makes 30% sparsity a net memory *loss*."""
        report = prune_model_weights(micro_llama, [0], ["w_q"], sparsity=0.3)
        assert report.memory_reduction < 0.0
        restore_pruned(micro_llama, report)

    def test_mild_pruning_gentle_on_trained_model(self, trained_llama):
        from repro.eval import build_suite, evaluate_suite
        from repro.experiments import get_world

        model, tokenizer = trained_llama
        suite = build_suite(get_world(), names=("arc_easy",))
        baseline = evaluate_suite(model, tokenizer, suite, limit=40).mean_accuracy
        report = prune_model_weights(
            model, range(model.config.n_layers), model.config.tensor_roles, 0.3
        )
        try:
            pruned = evaluate_suite(model, tokenizer, suite, limit=40).mean_accuracy
        finally:
            restore_pruned(model, report)
        assert pruned >= baseline - 0.15
