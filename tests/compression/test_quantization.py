"""Weight-quantization baseline."""

import numpy as np
import pytest

from repro.compression import (
    dequantize_weight,
    quantize_model_real,
    quantize_model_weights,
    quantize_weight,
    quantized_weight_bytes,
    restore_quantized,
    restore_real_quantized,
)
from repro.errors import DecompositionError
from repro.models import build_model


class TestQuantizeWeight:
    def test_grid_within_range(self):
        weight = np.random.default_rng(0).normal(size=(16, 8)).astype(np.float32)
        grid, scales = quantize_weight(weight, bits=8)
        assert grid.max() <= 127 and grid.min() >= -128
        assert scales.shape == (8,)

    def test_round_trip_error_small_at_8_bits(self):
        weight = np.random.default_rng(1).normal(size=(64, 32)).astype(np.float32)
        grid, scales = quantize_weight(weight, bits=8)
        restored = dequantize_weight(grid, scales)
        relative = np.abs(restored - weight).max() / np.abs(weight).max()
        assert relative < 0.01

    def test_lower_bits_higher_error(self):
        weight = np.random.default_rng(2).normal(size=(64, 32)).astype(np.float32)
        errors = []
        for bits in (8, 4, 3, 2):
            grid, scales = quantize_weight(weight, bits=bits)
            errors.append(float(np.linalg.norm(dequantize_weight(grid, scales) - weight)))
        assert errors == sorted(errors)
        assert len(set(errors)) == len(errors)  # strictly monotone in bits

    def test_zero_column_handled(self):
        weight = np.zeros((4, 3), dtype=np.float32)
        grid, scales = quantize_weight(weight, bits=8)
        assert np.all(dequantize_weight(grid, scales) == 0.0)

    def test_zero_column_scale_falls_back_to_one(self):
        weight = np.ones((4, 3), dtype=np.float32)
        weight[:, 1] = 0.0
        grid, scales = quantize_weight(weight, bits=8)
        assert scales[1] == 1.0  # not 0, so dequantization never divides by 0
        assert np.all(grid[:, 1] == 0)
        np.testing.assert_array_equal(dequantize_weight(grid, scales)[:, 1], 0.0)

    def test_per_channel_scales(self):
        weight = np.ones((4, 2), dtype=np.float32)
        weight[:, 1] = 100.0
        _, scales = quantize_weight(weight, bits=8)
        assert scales[1] > scales[0]

    def test_unsupported_bits(self):
        with pytest.raises(DecompositionError):
            quantize_weight(np.ones((2, 2)), bits=7)

    def test_non_matrix_rejected(self):
        with pytest.raises(DecompositionError):
            quantize_weight(np.ones(5), bits=8)


class TestQuantizedBytes:
    # quantized_weight_bytes accounts exactly what the runtime stores: a
    # bits-wide grid plus one fp32 scale per output column (H*W*bits/8 + W*4).

    def test_int8_exact_grid_plus_fp32_scales(self):
        assert quantized_weight_bytes((100, 100), 8) == 100 * 100 * 8 / 8 + 100 * 4

    def test_int4_exact_grid_plus_fp32_scales(self):
        assert quantized_weight_bytes((100, 100), 4) == 100 * 100 * 4 / 8 + 100 * 4

    def test_scale_overhead_vanishes_for_tall_matrices(self):
        grid_only = 4096 * 100 * 4 / 8
        assert quantized_weight_bytes((4096, 100), 4) == pytest.approx(
            grid_only, rel=0.01
        )


class TestQuantizeModel:
    def test_in_place_and_restorable(self, micro_llama, tokenizer):
        tokens = np.random.default_rng(0).integers(1, tokenizer.vocab_size, size=(1, 6))
        before = micro_llama(tokens).data.copy()
        report = quantize_model_weights(micro_llama, [0, 1], ["w_q", "w_d"], bits=4)
        during = micro_llama(tokens).data.copy()
        assert not np.array_equal(before, during)
        restore_quantized(micro_llama, report)
        assert np.array_equal(micro_llama(tokens).data, before)

    def test_memory_reduction_matches_bits(self, micro_llama):
        report = quantize_model_weights(micro_llama, [0], ["w_q"], bits=8)
        assert report.memory_reduction == pytest.approx(0.5, abs=0.05)
        restore_quantized(micro_llama, report)

    def test_report_errors_bounded(self, micro_llama):
        report = quantize_model_weights(micro_llama, [0, 2], ["w_q", "w_so"], bits=8)
        assert 0.0 <= report.mean_error < 0.02
        restore_quantized(micro_llama, report)

    def test_restore_bit_exact_over_repeated_cycles(self, micro_llama, tokenizer):
        tokens = np.random.default_rng(7).integers(
            1, tokenizer.vocab_size, size=(1, 5)
        )
        before = micro_llama(tokens).data.copy()
        originals = {
            name: param.data.copy()
            for name, param in micro_llama.named_parameters()
        }
        for bits in (8, 4, 2):
            report = quantize_model_weights(
                micro_llama, [0, 1], ["w_q", "w_u", "w_d"], bits=bits
            )
            restore_quantized(micro_llama, report)
        for name, param in micro_llama.named_parameters():
            np.testing.assert_array_equal(param.data, originals[name])
        np.testing.assert_array_equal(micro_llama(tokens).data, before)

    def test_factorized_targets_quantize_per_factor(self, micro_llama, tokenizer):
        from repro.decomposition import DecompositionConfig, decompose_model

        decompose_model(
            micro_llama,
            DecompositionConfig(layers=(0,), roles=("w_q",), rank=2),
        )
        tokens = np.random.default_rng(8).integers(
            1, tokenizer.vocab_size, size=(1, 5)
        )
        before = micro_llama(tokens).data.copy()
        report = quantize_model_weights(micro_llama, [0], ["w_q"], bits=8)
        assert sorted(t.role for t in report.tensors) == [
            "w_q.core",
            "w_q.u1",
            "w_q.u2",
        ]
        assert not np.array_equal(micro_llama(tokens).data, before)
        restore_quantized(micro_llama, report)
        np.testing.assert_array_equal(micro_llama(tokens).data, before)

    def test_int8_nearly_lossless_on_trained_model(self, trained_llama):
        """The classic result: 8-bit weight quantization barely moves
        accuracy — the gentleness decomposition is compared against."""
        from repro.eval import build_suite, evaluate_suite
        from repro.experiments import get_world

        model, tokenizer = trained_llama
        suite = build_suite(get_world(), names=("arc_easy",))
        baseline = evaluate_suite(model, tokenizer, suite, limit=40).mean_accuracy
        all_layers = range(model.config.n_layers)
        report = quantize_model_weights(
            model, all_layers, model.config.tensor_roles, bits=8
        )
        try:
            quantized = evaluate_suite(model, tokenizer, suite, limit=40).mean_accuracy
        finally:
            restore_quantized(model, report)
        assert quantized >= baseline - 0.05


class TestRealQuantization:
    def test_simulated_and_real_logits_bit_identical(self, micro_llama_config, tokenizer):
        """The contract the fast path's bit-identity rests on: real
        quantized storage dequantizes to exactly the weights simulated
        quantization bakes in."""
        simulated = build_model(micro_llama_config, rng=np.random.default_rng(5))
        real = build_model(micro_llama_config, rng=np.random.default_rng(5))
        real.load_state_dict(simulated.state_dict())
        quantize_model_weights(
            simulated,
            range(micro_llama_config.n_layers),
            micro_llama_config.tensor_roles,
            bits=8,
        )
        quantize_model_real(real, 8)
        simulated.eval()
        tokens = np.random.default_rng(9).integers(
            1, tokenizer.vocab_size, size=(2, 6)
        )
        from repro.runtime import fastpath

        with fastpath.disabled():
            np.testing.assert_array_equal(
                simulated(tokens).data, real(tokens).data
            )

    def test_restore_swaps_original_modules_back(self, micro_llama, tokenizer):
        tokens = np.random.default_rng(10).integers(
            1, tokenizer.vocab_size, size=(1, 5)
        )
        micro_llama.eval()
        before = micro_llama(tokens).data.copy()
        report = quantize_model_real(micro_llama, 8)
        assert not np.array_equal(micro_llama(tokens).data, before)
        restore_real_quantized(micro_llama, report)
        np.testing.assert_array_equal(micro_llama(tokens).data, before)

    def test_memory_reduction_measured_above_3x_at_int8(self, micro_llama):
        report = quantize_model_real(micro_llama, 8)
        try:
            assert report.memory_reduction_x > 3.0
            assert report.weight_bytes_after < report.weight_bytes_before
        finally:
            restore_real_quantized(micro_llama, report)

    def test_double_quantization_rejected(self, micro_llama):
        report = quantize_model_real(micro_llama, 8)
        try:
            with pytest.raises(DecompositionError, match="already quantized"):
                quantize_model_real(micro_llama, 8)
        finally:
            restore_real_quantized(micro_llama, report)
