"""Weight-quantization baseline."""

import numpy as np
import pytest

from repro.compression import (
    dequantize_weight,
    quantize_model_weights,
    quantize_weight,
    quantized_weight_bytes,
    restore_quantized,
)
from repro.errors import DecompositionError


class TestQuantizeWeight:
    def test_grid_within_range(self):
        weight = np.random.default_rng(0).normal(size=(16, 8)).astype(np.float32)
        grid, scales = quantize_weight(weight, bits=8)
        assert grid.max() <= 127 and grid.min() >= -128
        assert scales.shape == (8,)

    def test_round_trip_error_small_at_8_bits(self):
        weight = np.random.default_rng(1).normal(size=(64, 32)).astype(np.float32)
        grid, scales = quantize_weight(weight, bits=8)
        restored = dequantize_weight(grid, scales)
        relative = np.abs(restored - weight).max() / np.abs(weight).max()
        assert relative < 0.01

    def test_lower_bits_higher_error(self):
        weight = np.random.default_rng(2).normal(size=(64, 32)).astype(np.float32)
        errors = []
        for bits in (8, 4, 2):
            grid, scales = quantize_weight(weight, bits=bits)
            errors.append(float(np.linalg.norm(dequantize_weight(grid, scales) - weight)))
        assert errors[0] < errors[1] < errors[2]

    def test_zero_column_handled(self):
        weight = np.zeros((4, 3), dtype=np.float32)
        grid, scales = quantize_weight(weight, bits=8)
        assert np.all(dequantize_weight(grid, scales) == 0.0)

    def test_per_channel_scales(self):
        weight = np.ones((4, 2), dtype=np.float32)
        weight[:, 1] = 100.0
        _, scales = quantize_weight(weight, bits=8)
        assert scales[1] > scales[0]

    def test_unsupported_bits(self):
        with pytest.raises(DecompositionError):
            quantize_weight(np.ones((2, 2)), bits=7)

    def test_non_matrix_rejected(self):
        with pytest.raises(DecompositionError):
            quantize_weight(np.ones(5), bits=8)


class TestQuantizedBytes:
    def test_int8_quarter_of_fp32_half_of_fp16(self):
        dense_fp16 = 100 * 100 * 2
        quantized = quantized_weight_bytes((100, 100), 8)
        assert quantized == pytest.approx(dense_fp16 / 2, rel=0.05)

    def test_int4_quarter_of_fp16(self):
        quantized = quantized_weight_bytes((100, 100), 4)
        assert quantized == pytest.approx(100 * 100 * 2 / 4, rel=0.05)


class TestQuantizeModel:
    def test_in_place_and_restorable(self, micro_llama, tokenizer):
        tokens = np.random.default_rng(0).integers(1, tokenizer.vocab_size, size=(1, 6))
        before = micro_llama(tokens).data.copy()
        report = quantize_model_weights(micro_llama, [0, 1], ["w_q", "w_d"], bits=4)
        during = micro_llama(tokens).data.copy()
        assert not np.array_equal(before, during)
        restore_quantized(micro_llama, report)
        assert np.array_equal(micro_llama(tokens).data, before)

    def test_memory_reduction_matches_bits(self, micro_llama):
        report = quantize_model_weights(micro_llama, [0], ["w_q"], bits=8)
        assert report.memory_reduction == pytest.approx(0.5, abs=0.05)
        restore_quantized(micro_llama, report)

    def test_report_errors_bounded(self, micro_llama):
        report = quantize_model_weights(micro_llama, [0, 2], ["w_q", "w_so"], bits=8)
        assert 0.0 <= report.mean_error < 0.02
        restore_quantized(micro_llama, report)

    def test_int8_nearly_lossless_on_trained_model(self, trained_llama):
        """The classic result: 8-bit weight quantization barely moves
        accuracy — the gentleness decomposition is compared against."""
        from repro.eval import build_suite, evaluate_suite
        from repro.experiments import get_world

        model, tokenizer = trained_llama
        suite = build_suite(get_world(), names=("arc_easy",))
        baseline = evaluate_suite(model, tokenizer, suite, limit=40).mean_accuracy
        all_layers = range(model.config.n_layers)
        report = quantize_model_weights(
            model, all_layers, model.config.tensor_roles, bits=8
        )
        try:
            quantized = evaluate_suite(model, tokenizer, suite, limit=40).mean_accuracy
        finally:
            restore_quantized(model, report)
        assert quantized >= baseline - 0.05
