"""Bit-for-bit identity and zero-allocation contracts of the fast path.

The no-grad executor in :mod:`repro.runtime.fastpath` must be
indistinguishable from the Tensor-graph driver at the byte level: every
test here compares the two paths on the *same* model with
``np.testing.assert_array_equal`` — never ``allclose`` — across weight
flavors (dense / tied / decomposed), cache regimes (stateless / shared KV
cache / ragged), and world sizes (1 / 2).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.decomposition import DecompositionConfig, decompose_model
from repro.errors import ShapeError
from repro.models import build_model
from repro.models.config import ModelConfig
from repro.nn import ModelKVCache
from repro.runtime import OpProfiler, Workspace, causal_mask, fastpath
from repro.runtime.decode import _TokenRow

TINY = ModelConfig(
    name="tiny-fast",
    family="llama",
    vocab_size=97,
    dim=32,
    n_layers=2,
    n_heads=4,
    mlp_hidden=40,
    max_seq_len=64,
    n_kv_heads=2,
)

FLAVORS = ("dense", "tied", "decomposed")
WORLD_SIZES = (1, 2)


def build_tiny(flavor: str):
    config = replace(TINY, tie_lm_head=(flavor == "tied"))
    model = build_model(config, rng=np.random.default_rng(0))
    model.eval()
    if flavor == "decomposed":
        decompose_model(
            model,
            DecompositionConfig(
                layers=(0,), roles=("w_q", "w_u", "w_d"), rank=4
            ),
        )
        model.eval()
    return model


def make_runner(model, world_size: int):
    if world_size == 1:
        return model, None
    from repro.parallel import ShardedLlama

    sharded = ShardedLlama(model, world_size)
    return sharded, sharded


def tokens_for(config, batch, seq_len, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, config.vocab_size, size=(batch, seq_len), dtype=np.int64)


@pytest.mark.parametrize("flavor", FLAVORS)
@pytest.mark.parametrize("world_size", WORLD_SIZES)
class TestFastPathIdentity:
    def test_stateless_forward_bit_equal(self, flavor, world_size):
        model = build_tiny(flavor)
        runner, sharded = make_runner(model, world_size)
        try:
            tokens = tokens_for(model.config, 2, 9)
            with fastpath.disabled():
                reference = runner.forward(tokens).data
            fast = runner.forward(tokens).data
            np.testing.assert_array_equal(reference, fast)
        finally:
            if sharded is not None:
                sharded.close()

    def test_cached_prefill_and_decode_bit_equal(self, flavor, world_size):
        model = build_tiny(flavor)
        runner, sharded = make_runner(model, world_size)
        try:
            tokens = tokens_for(model.config, 1, 8)
            with fastpath.disabled():
                ref_cache = runner.make_cache()
                ref_prefill = runner.forward_cached(tokens[:, :6], ref_cache).data
                ref_steps = [
                    runner.forward_cached(tokens[:, i : i + 1], ref_cache).data
                    for i in range(6, 8)
                ]
            cache = runner.make_cache()
            np.testing.assert_array_equal(
                ref_prefill, runner.forward_cached(tokens[:, :6], cache).data
            )
            for i, reference in zip(range(6, 8), ref_steps):
                fast = runner.forward_cached(tokens[:, i : i + 1], cache).data
                np.testing.assert_array_equal(reference, fast)
        finally:
            if sharded is not None:
                sharded.close()

    def test_ragged_bit_equal(self, flavor, world_size):
        model = build_tiny(flavor)
        if world_size == 1:
            forward_ragged = model.runtime.forward_ragged

            def make_row_cache():
                return ModelKVCache(model.config.n_layers)

            sharded = None
        else:
            from repro.parallel import ShardedLlama

            sharded = ShardedLlama(model, world_size)
            forward_ragged = sharded.forward_ragged
            make_row_cache = sharded.make_cache
        try:
            step = tokens_for(model.config, 2, 3)
            lengths = np.array([3, 2])
            with fastpath.disabled():
                reference = forward_ragged(
                    step, [make_row_cache() for _ in range(2)], lengths
                ).data
            fast = forward_ragged(
                step, [make_row_cache() for _ in range(2)], lengths
            ).data
            for row, valid in enumerate(lengths):
                # Padded tail positions are garbage by contract in both paths.
                np.testing.assert_array_equal(
                    reference[row, :valid], fast[row, :valid]
                )
        finally:
            if sharded is not None:
                sharded.close()


class TestFastPathSelection:
    def test_training_mode_keeps_tensor_path(self):
        model = build_tiny("dense")
        model.train()
        assert fastpath.active_state(model.runtime.context) is None
        model.eval()
        assert fastpath.active_state(model.runtime.context) is not None

    def test_decomposition_swap_invalidates_state(self):
        model = build_tiny("dense")
        before = fastpath.active_state(model.runtime.context)
        decompose_model(
            model, DecompositionConfig(layers=(0,), roles=("w_q",), rank=2)
        )
        model.eval()
        after = fastpath.active_state(model.runtime.context)
        assert after is not None and after is not before
        assert after.layers[0].proj["w_q"].u1 is not None

    def test_disabled_context_manager_restores(self):
        model = build_tiny("dense")
        with fastpath.disabled():
            assert fastpath.active_state(model.runtime.context) is None
        assert fastpath.active_state(model.runtime.context) is not None

    def test_fast_logits_require_no_grad_semantics(self):
        model = build_tiny("dense")
        logits = model.forward(tokens_for(model.config, 1, 4))
        assert logits._backward is None and not logits.requires_grad


class TestZeroAllocationDecode:
    def test_warm_decode_loop_allocates_nothing(self):
        model = build_tiny("dense")
        tokens = tokens_for(model.config, 1, 6)
        cache = model.make_cache()
        model.forward_cached(tokens, cache)
        step = tokens[:, :1]
        # Warm past the seq_buf capacity boundaries (scores grow with the
        # cache) before snapshotting the counters.
        for _ in range(40):
            model.forward_cached(step, cache)
        workspace = model.runtime.workspace
        assert workspace is not None and workspace.allocations > 0
        allocations = workspace.allocations
        nbytes = workspace.bytes_allocated
        for _ in range(10):
            model.forward_cached(step, cache)
        assert workspace.allocations == allocations
        assert workspace.bytes_allocated == nbytes

    def test_ragged_steady_state_allocates_nothing(self):
        model = build_tiny("dense")
        caches = [ModelKVCache(model.config.n_layers) for _ in range(2)]
        step = tokens_for(model.config, 2, 1)
        lengths = np.array([1, 1])
        for _ in range(40):
            model.runtime.forward_ragged(step, caches, lengths)
        workspace = model.runtime.workspace
        allocations = workspace.allocations
        for _ in range(10):
            model.runtime.forward_ragged(step, caches, lengths)
        assert workspace.allocations == allocations


class TestFastPathErrors:
    def test_ragged_length_errors_survive_fast_path(self):
        model = build_tiny("dense")
        assert fastpath.active_state(model.runtime.context) is not None
        step = np.ones((2, 3), dtype=np.int64)
        caches = [ModelKVCache(model.config.n_layers) for _ in range(2)]
        with pytest.raises(ShapeError, match="out of range"):
            model.runtime.forward_ragged(step, caches, np.array([3, 4]))

    def test_embedding_range_error_survives_fast_path(self):
        model = build_tiny("dense")
        bad = np.full((1, 3), model.config.vocab_size, dtype=np.int64)
        with pytest.raises(ShapeError, match="out of range"):
            model.forward(bad)

    def test_pad_mask_shape_error_survives_fast_path(self):
        model = build_tiny("dense")
        tokens = tokens_for(model.config, 2, 4)
        with pytest.raises(ShapeError, match="pad_mask"):
            model.forward(tokens, pad_mask=np.zeros((2, 5), dtype=bool))

    def test_rope_overflow_error_survives_fast_path(self):
        model = build_tiny("dense")
        cache = model.make_cache()
        step = tokens_for(model.config, 1, 1)
        model.forward_cached(tokens_for(model.config, 1, TINY.max_seq_len), cache)
        with pytest.raises(ShapeError, match="RoPE"):
            model.forward_cached(step, cache)


class TestCausalMaskCache:
    def test_same_key_returns_same_readonly_array(self):
        first = causal_mask(5, offset=3)
        second = causal_mask(5, offset=3)
        assert first is second
        assert not first.flags.writeable

    def test_mask_values_unchanged(self):
        mask = causal_mask(3, offset=2)
        total = 5
        expected = np.arange(total)[None, :] > (2 + np.arange(3)[:, None])
        np.testing.assert_array_equal(mask, expected)


class TestWorkspace:
    def test_buf_reuses_by_name_shape_dtype(self):
        workspace = Workspace()
        a = workspace.buf("x", (2, 3))
        b = workspace.buf("x", (2, 3))
        c = workspace.buf("x", (2, 4))
        assert a is b and a is not c
        assert workspace.allocations == 2

    def test_seq_buf_grows_geometrically(self):
        workspace = Workspace()
        view = workspace.seq_buf("s", (2, 5), axis=1)
        assert view.shape == (2, 5)
        backing_allocs = workspace.allocations
        # within capacity: no new backing array
        workspace.seq_buf("s", (2, 30), axis=1)
        assert workspace.allocations == backing_allocs
        workspace.seq_buf("s", (2, 33), axis=1)
        assert workspace.allocations == backing_allocs + 1

    def test_seq_buf_zero_fills_on_allocation(self):
        workspace = Workspace()
        view = workspace.seq_buf("z", (2, 4), axis=1, zero=True)
        np.testing.assert_array_equal(view, np.zeros((2, 4), dtype=np.float32))


class TestOpProfiler:
    def test_records_fast_path_ops(self):
        model = build_tiny("dense")
        profiler = model.runtime.enable_profiling()
        model.forward(tokens_for(model.config, 1, 5))
        assert isinstance(profiler, OpProfiler)
        ops = profiler.to_dict()
        assert "layer0.w_q" in ops and "lm_head" in ops
        assert ops["layer0.w_q"]["calls"] == 1
        rolled = profiler.rollup()
        assert rolled["w_q"]["calls"] == model.config.n_layers
        assert "w_q" in profiler.table()
        model.runtime.disable_profiling()
        assert model.runtime.profiler is None

    def test_warm_loop_bytes_column_goes_to_zero(self):
        model = build_tiny("dense")
        cache = model.make_cache()
        tokens = tokens_for(model.config, 1, 4)
        model.forward_cached(tokens, cache)
        for _ in range(40):
            model.forward_cached(tokens[:, :1], cache)
        profiler = model.runtime.enable_profiling()
        for _ in range(5):
            model.forward_cached(tokens[:, :1], cache)
        assert all(rec["bytes"] == 0 for rec in profiler.to_dict().values())


class TestTokenRow:
    def test_append_growth_preserves_tokens(self):
        row = _TokenRow(np.array([[3, 1, 4]]), reserve=2)
        buffer_before = row._buf
        for token in range(20):
            row.append(token)
        assert row._buf is not buffer_before  # grew past the reserve
        np.testing.assert_array_equal(
            row.row[0], np.array([3, 1, 4] + list(range(20)))
        )

    def test_row_is_view_until_growth(self):
        row = _TokenRow(np.array([[7]]), reserve=8)
        view = row.row
        row.append(9)
        assert row.row.base is view.base
