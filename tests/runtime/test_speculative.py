"""Exact-equivalence lockdown for speculative decoding.

The contract under test: :class:`SpeculativeSession` emits **token-for-token
identical** output to dense greedy decoding for every drafter, every ``K``,
every cache regime, and every world size.  A drafter may only change the
forward schedule (and the acceptance rate) — never a single token.

The sweep crosses seeded random prompts x prompt lengths (including
``(1, T)`` row prompts and window-overflow) x K in {1, 2, 4, 8} x
dense/rank1/rank8 drafters x stateless/cached references x world size 1/2.
A rigged drafter then fuzzes every rejection position 0..K to hit each
rollback path deterministically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import build_model
from repro.models.config import ModelConfig
from repro.parallel import ShardedLlama
from repro.runtime import DecodeSession, SpecStats, SpeculativeConfig, SpeculativeSession
from repro.serving import VariantRegistry

VOCAB = 128
CONFIG = ModelConfig(
    name="spec-llama",
    family="llama",
    vocab_size=VOCAB,
    dim=32,
    n_layers=3,
    n_heads=4,
    n_kv_heads=2,
    mlp_hidden=64,
    max_seq_len=96,
)

DRAFTER_SPECS = ("dense", "rank1", "rank8")
K_VALUES = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def verifier():
    model = build_model(CONFIG, rng=np.random.default_rng(0))
    model.eval()
    return model


@pytest.fixture(scope="module")
def drafters(verifier):
    registry = VariantRegistry(verifier)
    return {spec: registry.get(spec).model for spec in DRAFTER_SPECS}


def random_prompt(rng, length):
    return rng.integers(0, VOCAB, size=length, dtype=np.int64)


def assert_spec_matches_dense(verifier, drafter, prompt, max_new, k, stop_token=None):
    """One cell of the sweep: speculative == cached dense == stateless dense."""
    cached = verifier.greedy_generate(
        prompt, max_new, stop_token=stop_token, use_cache=True
    )
    stateless = verifier.greedy_generate(
        prompt, max_new, stop_token=stop_token, use_cache=False
    )
    np.testing.assert_array_equal(cached, stateless)
    session = SpeculativeSession(verifier, drafter, k=k)
    got = session.generate(prompt, max_new, stop_token=stop_token)
    np.testing.assert_array_equal(got, cached)
    return session


class TestEquivalenceSweep:
    @pytest.mark.parametrize("spec", DRAFTER_SPECS)
    @pytest.mark.parametrize("k", K_VALUES)
    def test_matches_dense_greedy(self, verifier, drafters, spec, k):
        rng = np.random.default_rng(1000 * k + len(spec))
        for length in (1, 2, 7, 19):
            prompt = random_prompt(rng, length)
            assert_spec_matches_dense(verifier, drafters[spec], prompt, 16, k)

    @pytest.mark.parametrize("spec", DRAFTER_SPECS)
    def test_row_prompt_shape(self, verifier, drafters, spec):
        """(1, T) row prompts are accepted identically to flat prompts."""
        rng = np.random.default_rng(7)
        flat = random_prompt(rng, 9)
        row = flat.reshape(1, -1)
        session = SpeculativeSession(verifier, drafters[spec], k=4)
        from_row = session.generate(row, 12)
        expected = verifier.greedy_generate(flat, 12)
        np.testing.assert_array_equal(from_row, expected)

    @pytest.mark.parametrize("k", K_VALUES)
    def test_window_overflow_falls_back_identically(self, verifier, drafters, k):
        """Generation past max_seq_len hits the same windowed-recompute
        fallback at the same token as the dense loop."""
        rng = np.random.default_rng(11)
        prompt = random_prompt(rng, CONFIG.max_seq_len - 5)
        max_new = 12  # crosses the window edge mid-generation
        for spec in ("dense", "rank8"):
            assert_spec_matches_dense(verifier, drafters[spec], prompt, max_new, k)

    def test_prompt_longer_than_window(self, verifier, drafters):
        rng = np.random.default_rng(13)
        prompt = random_prompt(rng, CONFIG.max_seq_len + 10)
        assert_spec_matches_dense(verifier, drafters["rank8"], prompt, 6, 4)

    @pytest.mark.parametrize("spec", DRAFTER_SPECS)
    def test_stop_token_honoured_mid_draft(self, verifier, drafters, spec):
        """A stop token landing inside an accepted draft block ends the
        output at exactly the dense stopping point."""
        rng = np.random.default_rng(17)
        prompt = random_prompt(rng, 6)
        reference = verifier.greedy_generate(prompt, 16)
        generated = reference[len(prompt):]
        # Stop on each generated token in turn: every cut point must match.
        for stop in dict.fromkeys(int(t) for t in generated):
            assert_spec_matches_dense(
                verifier, drafters[spec], prompt, 16, 4, stop_token=stop
            )

    def test_zero_and_tiny_budgets(self, verifier, drafters):
        rng = np.random.default_rng(19)
        prompt = random_prompt(rng, 5)
        for max_new in (1, 2, 3):
            assert_spec_matches_dense(verifier, drafters["rank1"], prompt, max_new, 8)

    def test_decode_session_speculative_kwarg(self, verifier, drafters):
        """The DecodeSession/greedy_generate wiring routes through the
        speculative loop and records stats, with identical tokens."""
        rng = np.random.default_rng(23)
        prompt = random_prompt(rng, 8)
        expected = verifier.greedy_generate(prompt, 12)
        session = DecodeSession(verifier)
        assert session.spec_stats is None
        got = session.generate(prompt, 12, speculative=drafters["rank8"])
        np.testing.assert_array_equal(got, expected)
        assert session.spec_stats is not None
        assert session.spec_stats.committed == 12

        via_model = verifier.greedy_generate(
            prompt, 12, speculative=SpeculativeConfig(drafters["rank8"], k=2)
        )
        np.testing.assert_array_equal(via_model, expected)


class TestTensorParallel:
    @pytest.mark.parametrize("k", (2, 4))
    def test_sharded_verifier(self, verifier, drafters, k):
        """World size 2: a TP-sharded verifier with a canonical drafter."""
        sharded = ShardedLlama(verifier, 2)
        try:
            rng = np.random.default_rng(29)
            for spec in ("rank1", "rank8"):
                prompt = random_prompt(rng, 10)
                expected = verifier.greedy_generate(prompt, 12)
                session = SpeculativeSession(sharded, drafters[spec], k=k)
                got = session.generate(prompt, 12)
                np.testing.assert_array_equal(got, expected)
        finally:
            sharded.close()

    def test_sharded_drafter(self, verifier, drafters):
        """The drafter itself may be TP-sharded; rollback fans out per rank."""
        sharded_drafter = ShardedLlama(drafters["rank8"], 2)
        try:
            rng = np.random.default_rng(31)
            prompt = random_prompt(rng, 9)
            expected = verifier.greedy_generate(prompt, 12)
            session = SpeculativeSession(verifier, sharded_drafter, k=4)
            got = session.generate(prompt, 12)
            np.testing.assert_array_equal(got, expected)
        finally:
            sharded_drafter.close()


class RiggedDrafter:
    """Wraps a model; flips the greedy choice at scripted draft-call indices.

    Flipping call ``i`` makes draft ``i`` (cycle-local within the first
    cycle) disagree with the verifier, forcing rejection at a chosen
    position — a deterministic probe of every rollback path.
    """

    def __init__(self, base, flip_calls):
        self.base = base
        self.config = base.config
        self.flip_calls = set(flip_calls)
        self.calls = 0

    def make_cache(self):
        return self.base.make_cache()

    def forward_cached(self, tokens, cache):
        logits = self.base.forward_cached(tokens, cache)
        if self.calls in self.flip_calls:
            data = logits.data
            top = int(np.argmax(data[0, -1]))
            data[0, -1, top] = data[0, -1].min() - 1.0
        self.calls += 1
        return logits


class TestRejectionPositions:
    @pytest.mark.parametrize("reject_at", (0, 1, 2, 3))
    def test_every_rejection_position(self, verifier, reject_at):
        """Rejecting the drafts at position 0..K-1 of the first cycle (and
        accepting everything elsewhere) still reproduces dense greedy."""
        k = 4
        rng = np.random.default_rng(37)
        prompt = random_prompt(rng, 8)
        expected = verifier.greedy_generate(prompt, 14)
        drafter = RiggedDrafter(verifier, {reject_at})
        session = SpeculativeSession(verifier, drafter, k=k)
        got = session.generate(prompt, 14)
        np.testing.assert_array_equal(got, expected)
        # One sabotaged proposal rejects position reject_at and discards the
        # k - reject_at - 1 drafts behind it; every other cycle is the dense
        # model drafting for itself, so nothing else is rejected.
        assert session.stats.drafted - session.stats.accepted == k - reject_at

    def test_seeded_rejection_fuzz(self, verifier):
        """Random flip sets over many cycles: rollback keeps both caches
        consistent no matter where rejections land."""
        rng = np.random.default_rng(41)
        for trial in range(8):
            k = int(rng.integers(1, 9))
            length = int(rng.integers(1, 24))
            prompt = random_prompt(rng, length)
            n_flips = int(rng.integers(0, 12))
            flips = set(rng.integers(0, 40, size=n_flips).tolist())
            expected = verifier.greedy_generate(prompt, 16)
            session = SpeculativeSession(verifier, RiggedDrafter(verifier, flips), k=k)
            got = session.generate(prompt, 16)
            np.testing.assert_array_equal(got, expected)

    def test_all_rejected_drafter_still_exact(self, verifier):
        """A drafter wrong on every call degenerates to one-token-per-cycle
        dense decoding: acceptance 0.0, output unchanged."""
        rng = np.random.default_rng(43)
        prompt = random_prompt(rng, 7)
        expected = verifier.greedy_generate(prompt, 10)
        drafter = RiggedDrafter(verifier, range(10_000))
        session = SpeculativeSession(verifier, drafter, k=4)
        got = session.generate(prompt, 10)
        np.testing.assert_array_equal(got, expected)
        assert session.stats.accepted == 0
        assert session.stats.acceptance_rate == 0.0
        assert session.stats.committed == 10


class TestStats:
    def test_dense_drafter_accepts_everything(self, verifier, drafters):
        """The dense model drafting for itself is always right: acceptance
        is exactly 1.0 and every cycle commits k+1 tokens."""
        rng = np.random.default_rng(47)
        prompt = random_prompt(rng, 6)
        session = assert_spec_matches_dense(verifier, drafters["dense"], prompt, 15, 4)
        stats = session.stats
        assert stats.acceptance_rate == 1.0
        assert stats.accepted == stats.drafted
        assert stats.committed == 15
        assert stats.draft_forwards == stats.drafted
        # 15 tokens: 1 from prefill, then cycles of k+1=5 -> 2 full cycles
        # plus a final budget-clamped cycle.
        assert stats.verify_steps == 3

    def test_k1_pins_draft_count(self, verifier, drafters):
        rng = np.random.default_rng(53)
        prompt = random_prompt(rng, 5)
        session = assert_spec_matches_dense(verifier, drafters["dense"], prompt, 9, 1)
        # k=1 with budget 9: first token from prefill, then 4 cycles of
        # draft-1/commit-2; every cycle drafts exactly one token.
        assert session.stats.drafted == session.stats.verify_steps
        assert session.stats.committed == 9

    def test_empty_stats_rate_is_zero(self):
        assert SpecStats().acceptance_rate == 0.0

    def test_reset_and_round_trip(self):
        stats = SpecStats(drafted=8, accepted=6, committed=10, verify_steps=3,
                          draft_forwards=8)
        payload = stats.as_dict()
        assert payload["acceptance_rate"] == pytest.approx(0.75)
        assert payload["drafted"] == 8
        stats.reset()
        assert stats.as_dict()["acceptance_rate"] == 0.0
        assert stats.drafted == 0

    def test_stats_accumulate_across_generates(self, verifier, drafters):
        session = SpeculativeSession(verifier, drafters["dense"], k=2)
        prompt = np.array([3, 1, 4], dtype=np.int64)
        session.generate(prompt, 5)
        first = session.stats.committed
        session.generate(prompt, 5)
        assert session.stats.committed == 2 * first


class TestValidation:
    def test_k_must_be_positive(self, verifier, drafters):
        with pytest.raises(ConfigError):
            SpeculativeConfig(drafters["dense"], k=0)
        with pytest.raises(ConfigError):
            SpeculativeSession(verifier, drafters["dense"], k=-1)

    def test_drafter_needs_cached_surface(self, verifier):
        with pytest.raises(ConfigError):
            SpeculativeConfig(object())
        with pytest.raises(ConfigError):
            SpeculativeSession(verifier, object())

    def test_verifier_needs_cached_surface(self, verifier, drafters):
        with pytest.raises(ConfigError):
            SpeculativeSession(object(), drafters["dense"])

    def test_speculative_requires_cache_path(self, verifier, drafters):
        session = DecodeSession(verifier)
        with pytest.raises(ConfigError):
            session.generate(
                np.array([1, 2, 3]), 4,
                use_cache=False, speculative=drafters["dense"],
            )
