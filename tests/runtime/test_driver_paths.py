"""Driver-level equality and typed error paths across cache regimes."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import ModelKVCache
from repro.runtime import ModelRuntime, build_model_program


def _fresh_caches(model, batch):
    return [ModelKVCache(model.config.n_layers) for _ in range(batch)]


class TestCachedEqualsStateless:
    def test_prefill_then_step_matches_full_forward(self, micro_llama):
        micro_llama.eval()
        tokens = (np.arange(14).reshape(2, 7) * 5 + 1) % micro_llama.config.vocab_size
        full = micro_llama(tokens)
        cache = micro_llama.make_cache()
        prefill = micro_llama.forward_cached(tokens[:, :5], cache)
        np.testing.assert_array_equal(prefill.data, full.data[:, :5])
        step = micro_llama.forward_cached(tokens[:, 5:], cache)
        np.testing.assert_array_equal(step.data, full.data[:, 5:])

    def test_ragged_matches_per_sequence_cached(self, micro_llama):
        micro_llama.eval()
        vocab = micro_llama.config.vocab_size
        rows = [np.array([1, 4, 9, 2]) % vocab, np.array([7, 3]) % vocab]
        lengths = np.array([len(r) for r in rows])
        padded = np.zeros((2, lengths.max()), dtype=np.int64)
        for i, row in enumerate(rows):
            padded[i, : len(row)] = row
        caches = _fresh_caches(micro_llama, 2)
        ragged = micro_llama.forward_ragged(padded, caches, lengths)
        for i, row in enumerate(rows):
            solo = micro_llama.forward_cached(
                row.reshape(1, -1), micro_llama.make_cache()
            )
            # Batched GEMMs reorder float accumulation: close, not bit-equal.
            np.testing.assert_allclose(
                ragged.data[i, : len(row)], solo.data[0], atol=1e-5
            )


class TestRaggedErrorPaths:
    def test_row_cache_count_mismatch(self, micro_llama):
        micro_llama.eval()
        tokens = np.ones((2, 3), dtype=np.int64)
        with pytest.raises(ShapeError, match="cache"):
            micro_llama.forward_ragged(
                tokens, _fresh_caches(micro_llama, 1), np.array([3, 3])
            )

    def test_length_exceeds_padded_width(self, micro_llama):
        micro_llama.eval()
        tokens = np.ones((2, 3), dtype=np.int64)
        with pytest.raises(ShapeError, match="out of range"):
            micro_llama.forward_ragged(
                tokens, _fresh_caches(micro_llama, 2), np.array([3, 4])
            )

    def test_zero_new_token_row(self, micro_llama):
        micro_llama.eval()
        tokens = np.ones((2, 3), dtype=np.int64)
        with pytest.raises(ShapeError, match="out of range"):
            micro_llama.forward_ragged(
                tokens, _fresh_caches(micro_llama, 2), np.array([3, 0])
            )


class TestDriverValidation:
    def test_pad_mask_shape_checked(self, micro_llama):
        micro_llama.eval()
        tokens = np.ones((2, 4), dtype=np.int64)
        with pytest.raises(ShapeError, match="pad_mask"):
            micro_llama(tokens, pad_mask=np.zeros((2, 5), dtype=bool))

    def test_runtime_rejects_layer_mismatch(self, micro_llama):
        program = build_model_program(micro_llama.config)
        context = micro_llama.runtime.context

        class Shallow:
            n_layers = program.n_layers + 1
            config = micro_llama.config
            prologue = program.prologue
            layers = program.layers[:1]
            epilogue = program.epilogue

        with pytest.raises(ShapeError, match="layers"):
            ModelRuntime(Shallow(), context)


class TestSharedDriver:
    def test_all_backends_use_one_driver(self, micro_llama):
        """Canonical model, TP executor, and attention module all bind the
        same run_model/attention kernels — no forked forward paths left."""
        from repro.nn.attention import MultiHeadAttention, _attention_kernel
        from repro.parallel.executor import RankExecutor
        from repro.runtime import driver

        assert _attention_kernel is driver.attention
        assert micro_llama.runtime.forward.__func__ is not None
        assert RankExecutor.forward.__doc__  # facade exists
        import inspect

        assert "run_model" in inspect.getsource(RankExecutor.forward)
        assert "run_model" in inspect.getsource(type(micro_llama.runtime).forward)
        assert "_attention_kernel" in inspect.getsource(MultiHeadAttention.forward)
