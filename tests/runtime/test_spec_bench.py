"""The speculative-decoding benchmark harness: shaping, cells, and JSON.

``run_spec_bench`` is what ``repro bench-decode --speculative`` calls; CI
gates on its report (every cell exact, acceptance above zero), so the
report's accounting is pinned here.
"""

import json

import numpy as np
import pytest

from repro.decomposition import shape_model_spectrum
from repro.decomposition.svd import impose_spectrum, singular_values
from repro.errors import ConfigError, DecompositionError
from repro.models import build_model
from repro.models.config import ModelConfig
from repro.runtime.benchmark import SpecBenchCell, SpecBenchReport, run_spec_bench

CONFIG = ModelConfig(
    name="bench-llama",
    family="llama",
    vocab_size=96,
    dim=32,
    n_layers=2,
    n_heads=4,
    n_kv_heads=2,
    mlp_hidden=48,
    max_seq_len=64,
)


@pytest.fixture(scope="module")
def base_model():
    model = build_model(CONFIG, rng=np.random.default_rng(2))
    model.eval()
    return model


class TestImposeSpectrum:
    def test_spectrum_is_exponential(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(12, 8))
        shaped = impose_spectrum(matrix, decay=0.5)
        values = singular_values(shaped)
        expected = values[0] * np.exp(-0.5 * np.arange(values.size))
        np.testing.assert_allclose(values, expected, rtol=1e-9)

    def test_zero_decay_keeps_flat_spectrum(self):
        rng = np.random.default_rng(1)
        shaped = impose_spectrum(rng.normal(size=(6, 6)), decay=0.0)
        values = singular_values(shaped)
        np.testing.assert_allclose(values, values[0], rtol=1e-9)

    def test_validation(self):
        with pytest.raises(DecompositionError):
            impose_spectrum(np.zeros(4), decay=0.1)
        with pytest.raises(DecompositionError):
            impose_spectrum(np.zeros((4, 4)), decay=-0.1)

    def test_shape_model_spectrum_touches_every_slot(self, base_model):
        clone = build_model(CONFIG)
        clone.load_state_dict(base_model.state_dict())
        count = shape_model_spectrum(clone, decay=0.4)
        assert count == CONFIG.n_layers * len(clone.tensor_roles)
        # The clone changed; the source model did not.
        assert not np.array_equal(
            clone.state_dict()["blocks.0.attn.w_q.weight"],
            base_model.state_dict()["blocks.0.attn.w_q.weight"],
        )


class TestRunSpecBench:
    @pytest.fixture(scope="class")
    def report(self, base_model):
        return run_spec_bench(
            base_model,
            drafter_specs=("dense", "rank8"),
            k_values=(2,),
            prompt_tokens=8,
            new_tokens=10,
            seed=3,
        )

    def test_every_cell_exact(self, report):
        assert report.all_tokens_match
        assert len(report.cells) == 2

    def test_shaped_dense_drafter_accepts_everything(self, report):
        by_name = {cell.drafter: cell for cell in report.cells}
        assert by_name["dense"].acceptance_rate == 1.0
        assert report.max_acceptance_rate == 1.0
        assert 0.0 <= by_name["rank8"].acceptance_rate <= 1.0

    def test_report_json_round_trip(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["all_tokens_match"] is True
        assert payload["model"] == CONFIG.name
        assert payload["max_acceptance_rate"] == report.max_acceptance_rate
        assert payload["best_speedup_tp1"] == report.best_speedup_tp1
        cell = payload["cells"][0]
        for key in ("drafter", "k", "tp", "tokens_match", "acceptance_rate",
                    "drafted", "accepted", "baseline_tokens_per_s",
                    "effective_tokens_per_s", "speedup"):
            assert key in cell

    def test_table_renders_every_cell(self, report):
        table = report.table()
        assert "exact" in table
        assert table.count("tok/s") == 2 * len(report.cells)

    def test_caller_model_never_mutated(self, base_model):
        before = {k: v.copy() for k, v in base_model.state_dict().items()}
        run_spec_bench(base_model, drafter_specs=("rank8",), k_values=(2,),
                       prompt_tokens=4, new_tokens=4, seed=0)
        after = base_model.state_dict()
        for name, weight in before.items():
            np.testing.assert_array_equal(weight, after[name])

    def test_validation(self, base_model):
        with pytest.raises(ConfigError):
            run_spec_bench(base_model, drafter_specs=())
        with pytest.raises(ConfigError):
            run_spec_bench(base_model, k_values=(0,))
        with pytest.raises(ConfigError):
            run_spec_bench(base_model, new_tokens=1)


class TestReportAccounting:
    def cell(self, **overrides):
        defaults = dict(
            drafter="rank8", k=4, tp=1, tokens_match=True,
            acceptance_rate=0.75, drafted=8, accepted=6,
            baseline_tokens_per_s=100.0, effective_tokens_per_s=130.0,
        )
        defaults.update(overrides)
        return SpecBenchCell(**defaults)

    def test_speedup(self):
        assert self.cell().speedup == pytest.approx(1.3)
        assert self.cell(baseline_tokens_per_s=0.0).speedup == 0.0

    def test_mismatch_flagged_in_summary(self):
        assert "TOKEN MISMATCH" in self.cell(tokens_match=False).summary_line()
        assert "[exact]" in self.cell().summary_line()

    def test_best_speedup_gates_on_tp1_only(self):
        report = SpecBenchReport(
            model="m", prompt_tokens=4, new_tokens=4, seed=0, decay=0.35,
            cells=[
                self.cell(effective_tokens_per_s=110.0),
                self.cell(tp=2, effective_tokens_per_s=500.0),
            ],
        )
        assert report.best_speedup_tp1 == pytest.approx(1.1)
        assert not SpecBenchReport(
            model="m", prompt_tokens=4, new_tokens=4, seed=0, decay=0.35,
        ).best_speedup_tp1

    def test_empty_report_is_safe(self):
        report = SpecBenchReport(
            model="m", prompt_tokens=4, new_tokens=4, seed=0, decay=0.35
        )
        assert report.all_tokens_match  # vacuously
        assert report.max_acceptance_rate == 0.0
