"""Layer-program structure: the single source of truth both walkers share."""

import pytest

from repro.decomposition import DecompositionConfig
from repro.errors import ConfigError
from repro.models import get_config
from repro.runtime import build_model_program, role_parallelism
from repro.runtime.program import ATTN_KINDS, NORM, PROJ


LLAMA = get_config("tiny-llama")
BERT = get_config("tiny-bert")


class TestProgramStructure:
    def test_op_count_per_layer(self):
        """attn_norm + 7 role GEMMs + 3 attention bmms + mlp_norm + elementwise."""
        program = build_model_program(LLAMA)
        for layer in program.layers:
            assert len(layer.ops) == 1 + len(LLAMA.tensor_roles) + 3 + 1 + 1
        assert program.n_ops == 1 + LLAMA.n_layers * 13 + 2

    def test_execution_order_names(self):
        program = build_model_program(LLAMA)
        names = [op.name for op in program.all_ops()]
        assert names[0] == "embed"
        assert names[-2:] == ["final_norm", "lm_head"]
        layer0 = names[1 : 1 + 13]
        assert layer0[0] == "layer0.attn_norm"
        assert layer0[1:8] == [f"layer0.{role}" for role in LLAMA.tensor_roles]
        assert layer0[8:11] == ["layer0.attn.qk", "layer0.attn.softmax", "layer0.attn.pv"]
        assert layer0[11:] == ["layer0.mlp_norm", "layer0.elementwise"]

    def test_projection_shapes_match_config(self):
        program = build_model_program(LLAMA)
        for spec in program.layers[0].projections():
            height, width = LLAMA.tensor_shape(spec.role)
            assert (spec.in_features, spec.out_features) == (height, width)

    def test_attention_geometry(self):
        llama = build_model_program(LLAMA).layers[0].attention
        assert llama.causal and llama.rope
        assert llama.n_kv_heads == LLAMA.kv_heads
        assert llama.kv_group == LLAMA.n_heads // LLAMA.kv_heads
        bert = build_model_program(BERT).layers[0].attention
        assert not bert.causal and not bert.rope
        assert bert.n_kv_heads == BERT.n_heads

    def test_attention_ops_head_parallel(self):
        program = build_model_program(LLAMA)
        attn_ops = [op for op in program.layers[0].ops if op.kind in ATTN_KINDS]
        assert len(attn_ops) == 3
        for op in attn_ops:
            assert op.parallelism == "sharded"
            assert op.shard_dim == LLAMA.n_heads
            assert op.in_features == LLAMA.head_dim

    def test_role_split(self):
        layer = build_model_program(LLAMA).layers[0]
        assert set(layer.attn_roles) == {"w_q", "w_k", "w_v", "w_so"}
        assert set(layer.mlp_roles) == {"w_g", "w_u", "w_d"}
        assert layer.roles == layer.attn_roles + layer.mlp_roles


class TestDecomposedProgram:
    def test_factor_chain_replaces_dense_gemm(self):
        dec = DecompositionConfig.uniform([0], ["w_q"], rank=2)
        program = build_model_program(LLAMA, dec)
        names = [op.name for op in program.layers[0].ops if op.kind == PROJ]
        assert "layer0.w_q" not in names
        assert names[:3] == ["layer0.w_q.u1", "layer0.w_q.core", "layer0.w_q.u2"]
        chain = [op for op in program.layers[0].ops if op.role == "w_q"]
        height, width = LLAMA.tensor_shape("w_q")
        assert [(op.in_features, op.out_features) for op in chain] == [
            (height, 2), (2, 2), (2, width)
        ]
        # Low-rank chains bottom out at shard_dim=rank: no TP scaling left.
        assert all(op.shard_dim == 2 for op in chain)
        # Untouched layers keep their dense GEMMs.
        assert any(op.name == "layer1.w_q" for op in program.layers[1].ops)

    def test_decomposed_pairs_recorded(self):
        dec = DecompositionConfig.uniform(range(LLAMA.n_layers), ["w_d"], rank=3)
        program = build_model_program(LLAMA, dec)
        assert program.decomposed == {
            (layer, "w_d"): 3 for layer in range(LLAMA.n_layers)
        }
        # Each decomposed pair swaps 1 GEMM for 3: +2 ops apiece.
        dense = build_model_program(LLAMA)
        assert program.n_ops == dense.n_ops + 2 * LLAMA.n_layers


class TestRoleParallelism:
    def test_megatron_layout(self):
        assert role_parallelism(LLAMA, "w_q") == ("column", LLAMA.n_heads)
        assert role_parallelism(LLAMA, "w_k") == ("column", LLAMA.kv_heads)
        assert role_parallelism(LLAMA, "w_so") == ("row", LLAMA.n_heads)
        assert role_parallelism(LLAMA, "w_g") == ("column", LLAMA.mlp_hidden)
        assert role_parallelism(LLAMA, "w_d") == ("row", LLAMA.mlp_hidden)

    def test_unknown_role_rejected(self):
        with pytest.raises(ConfigError):
            role_parallelism(LLAMA, "w_nope")


class TestModelsExposeProgram:
    def test_llama_and_bert_program_property(self, micro_llama, micro_bert):
        for model in (micro_llama, micro_bert):
            program = model.program
            assert program.n_layers == model.config.n_layers
            assert [op.kind for op in program.epilogue] == [NORM, PROJ]

    def test_llama_runtime_is_bound_to_program(self, micro_llama):
        """The model's forward driver and the hwmodel walk the same object."""
        from repro.runtime import ModelRuntime

        assert isinstance(micro_llama.runtime, ModelRuntime)
        assert micro_llama.runtime.program.n_layers == micro_llama.config.n_layers
