"""Bit-for-bit identity of the int8 fast-path kernels.

The quantized kernels in :mod:`repro.runtime.fastpath` dequantize int8
grids block-by-block into the :class:`Workspace` arena (through the
budgeted dequant cache when it fits, streaming scratch when it does not)
and must land on exactly the bytes the Tensor-graph driver produces from
the same simulated-quant weights: every comparison here is
``np.testing.assert_array_equal`` — never ``allclose`` — across weight
structures (dense / rank-1 / rank-8 chains), cache regimes (stateless /
shared KV cache / ragged), and (tp, pp) mesh shapes.
"""

import numpy as np
import pytest

from repro.compression import (
    quantize_model_real,
    restore_real_quantized,
)
from repro.decomposition import DecompositionConfig, decompose_model
from repro.models import build_model
from repro.models.config import ModelConfig
from repro.nn import ModelKVCache
from repro.runtime import Workspace, fastpath
from repro.runtime import workspace as workspace_module
from repro.runtime.benchmark import run_decode_bench

TINY = ModelConfig(
    name="tiny-quant-fast",
    family="llama",
    vocab_size=97,
    dim=32,
    n_layers=2,
    n_heads=4,
    mlp_hidden=40,
    max_seq_len=64,
    n_kv_heads=2,
)

STRUCTURES = ("dense", "rank1", "rank8")
MESHES = ((1, 1), (2, 1), (1, 2), (2, 2))  # (tp, pp)


def build_quantized(structure: str, bits: int = 8):
    model = build_model(TINY, rng=np.random.default_rng(0))
    model.eval()
    if structure != "dense":
        rank = int(structure.removeprefix("rank"))
        decompose_model(
            model,
            DecompositionConfig.all_tensors(TINY, range(TINY.n_layers), rank=rank),
        )
    quantize_model_real(model, bits)
    return model


def make_runner(model, tp: int, pp: int):
    if tp == 1 and pp == 1:
        return model, None
    from repro.parallel import ShardedLlama

    sharded = ShardedLlama(model, tp, pp=pp)
    return sharded, sharded


def tokens_for(config, batch, seq_len, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, config.vocab_size, size=(batch, seq_len), dtype=np.int64)


@pytest.mark.parametrize("structure", STRUCTURES)
@pytest.mark.parametrize("tp,pp", MESHES)
class TestQuantizedIdentity:
    def test_stateless_forward_bit_equal(self, structure, tp, pp):
        model = build_quantized(structure)
        runner, sharded = make_runner(model, tp, pp)
        try:
            tokens = tokens_for(model.config, 2, 9)
            with fastpath.disabled():
                reference = runner.forward(tokens).data
            fast = runner.forward(tokens).data
            np.testing.assert_array_equal(reference, fast)
        finally:
            if sharded is not None:
                sharded.close()

    def test_cached_prefill_and_decode_bit_equal(self, structure, tp, pp):
        model = build_quantized(structure)
        runner, sharded = make_runner(model, tp, pp)
        try:
            tokens = tokens_for(model.config, 1, 8)
            with fastpath.disabled():
                ref_cache = runner.make_cache()
                ref_prefill = runner.forward_cached(tokens[:, :6], ref_cache).data
                ref_steps = [
                    runner.forward_cached(tokens[:, i : i + 1], ref_cache).data
                    for i in range(6, 8)
                ]
            cache = runner.make_cache()
            np.testing.assert_array_equal(
                ref_prefill, runner.forward_cached(tokens[:, :6], cache).data
            )
            for i, reference in zip(range(6, 8), ref_steps):
                fast = runner.forward_cached(tokens[:, i : i + 1], cache).data
                np.testing.assert_array_equal(reference, fast)
        finally:
            if sharded is not None:
                sharded.close()

    def test_ragged_bit_equal(self, structure, tp, pp):
        model = build_quantized(structure)
        if tp == 1 and pp == 1:
            forward_ragged = model.runtime.forward_ragged

            def make_row_cache():
                return ModelKVCache(model.config.n_layers)

            sharded = None
        else:
            from repro.parallel import ShardedLlama

            sharded = ShardedLlama(model, tp, pp=pp)
            forward_ragged = sharded.forward_ragged
            make_row_cache = sharded.make_cache
        try:
            step = tokens_for(model.config, 2, 3)
            lengths = np.array([3, 2])
            with fastpath.disabled():
                reference = forward_ragged(
                    step, [make_row_cache() for _ in range(2)], lengths
                ).data
            fast = forward_ragged(
                step, [make_row_cache() for _ in range(2)], lengths
            ).data
            for row, valid in enumerate(lengths):
                np.testing.assert_array_equal(
                    reference[row, :valid], fast[row, :valid]
                )
        finally:
            if sharded is not None:
                sharded.close()


class TestInt4Identity:
    @pytest.mark.parametrize("structure", ("dense", "rank8"))
    def test_int4_cached_decode_bit_equal(self, structure):
        model = build_quantized(structure, bits=4)
        tokens = tokens_for(model.config, 1, 7)
        with fastpath.disabled():
            ref_cache = model.make_cache()
            reference = [model.forward_cached(tokens[:, :5], ref_cache).data]
            reference += [
                model.forward_cached(tokens[:, i : i + 1], ref_cache).data
                for i in range(5, 7)
            ]
        cache = model.make_cache()
        fast = [model.forward_cached(tokens[:, :5], cache).data]
        fast += [
            model.forward_cached(tokens[:, i : i + 1], cache).data
            for i in range(5, 7)
        ]
        for ref, got in zip(reference, fast):
            np.testing.assert_array_equal(ref, got)


class TestQuantizedSelection:
    def test_real_quantization_swaps_to_grid_projections(self):
        model = build_quantized("dense")
        state = fastpath.active_state(model.runtime.context)
        assert state is not None
        proj = state.layers[0].proj["w_q"]
        assert proj.grid is not None and proj.grid.dtype == np.int8
        assert proj.weight is None
        assert proj.scales.dtype == np.float32

    def test_quantized_chain_keeps_prefix_grids(self):
        model = build_quantized("rank8")
        state = fastpath.active_state(model.runtime.context)
        proj = state.layers[0].proj["w_q"]
        assert proj.u1_grid is not None and proj.core_grid is not None
        assert proj.grid is not None  # U2 grid

    def test_restore_invalidates_back_to_fp32_path(self):
        model = build_model(TINY, rng=np.random.default_rng(0))
        model.eval()
        report = quantize_model_real(model, 8)
        quant_state = fastpath.active_state(model.runtime.context)
        assert quant_state.layers[0].proj["w_q"].grid is not None
        restore_real_quantized(model, report)
        state = fastpath.active_state(model.runtime.context)
        assert state is not quant_state
        assert state.layers[0].proj["w_q"].grid is None
        assert state.layers[0].proj["w_q"].weight is not None

    def test_projection_cache_keys_are_unique(self):
        model = build_quantized("dense")
        state = fastpath.active_state(model.runtime.context)
        keys = [
            proj.key
            for layer in state.layers
            for proj in layer.proj.values()
        ]
        assert len(keys) == len(set(keys))
        assert all(keys)


class TestDequantCache:
    def test_warm_decode_allocates_nothing_and_uses_cache(self):
        model = build_quantized("dense")
        tokens = tokens_for(model.config, 1, 6)
        cache = model.make_cache()
        model.forward_cached(tokens, cache)
        step = tokens[:, :1]
        for _ in range(40):
            model.forward_cached(step, cache)
        workspace = model.runtime.workspace
        assert workspace is not None and workspace.cache_bytes > 0
        allocations = workspace.allocations
        nbytes = workspace.bytes_allocated
        for _ in range(10):
            model.forward_cached(step, cache)
        assert workspace.allocations == allocations
        assert workspace.bytes_allocated == nbytes

    def test_zero_budget_streams_and_stays_bit_identical(self, monkeypatch):
        model = build_quantized("rank8")
        tokens = tokens_for(model.config, 1, 8)
        with fastpath.disabled():
            ref_cache = model.make_cache()
            reference = [model.forward_cached(tokens[:, :6], ref_cache).data]
            reference += [
                model.forward_cached(tokens[:, i : i + 1], ref_cache).data
                for i in range(6, 8)
            ]
        monkeypatch.setattr(workspace_module, "DEFAULT_DEQUANT_CACHE_BYTES", 0)
        model.runtime.context.__dict__.pop("_fast_state", None)
        cache = model.make_cache()
        fast = [model.forward_cached(tokens[:, :6], cache).data]
        fast += [
            model.forward_cached(tokens[:, i : i + 1], cache).data
            for i in range(6, 8)
        ]
        workspace = model.runtime.workspace
        assert workspace.cache_limit == 0 and workspace.cache_bytes == 0
        for ref, got in zip(reference, fast):
            np.testing.assert_array_equal(ref, got)


class TestWorkspaceCache:
    def test_fresh_on_first_fill_then_hit(self):
        workspace = Workspace()
        first, fresh = workspace.cache("w", (4, 4), tag=(1, 2))
        assert fresh is True
        again, fresh = workspace.cache("w", (4, 4), tag=(1, 2))
        assert again is first and fresh is False

    def test_tag_change_requests_refill_in_place(self):
        workspace = Workspace()
        array, _ = workspace.cache("w", (4, 4), tag=(1, 2))
        allocations = workspace.allocations
        again, fresh = workspace.cache("w", (4, 4), tag=(9, 9))
        assert again is array and fresh is True
        assert workspace.allocations == allocations  # retag, no realloc

    def test_budget_exhaustion_returns_none(self):
        workspace = Workspace(cache_limit=100)
        assert workspace.cache("big", (100, 100), tag=(0,)) is None
        assert workspace.cache_bytes == 0
        small, fresh = workspace.cache("small", (5,), tag=(0,))
        assert fresh is True
        assert workspace.cache_bytes == small.nbytes

    def test_cache_bytes_accounting(self):
        workspace = Workspace(cache_limit=10_000)
        a, _ = workspace.cache("a", (8, 8), tag=(0,))
        b, _ = workspace.cache("b", (4, 4), tag=(0,))
        assert workspace.cache_bytes == a.nbytes + b.nbytes
        assert workspace.allocations == 2

    def test_default_budget_comes_from_module_constant(self):
        assert Workspace().cache_limit == workspace_module.DEFAULT_DEQUANT_CACHE_BYTES
        assert Workspace(cache_limit=7).cache_limit == 7


class TestQuantizedBench:
    def test_bits_expansion_ratios_and_memory(self):
        model = build_model(TINY, rng=np.random.default_rng(0))
        model.eval()
        report = run_decode_bench(
            model,
            variant_specs=("dense",),
            tp_degrees=(1,),
            prompt_tokens=4,
            new_tokens=4,
            bits=8,
        )
        specs = [cell.spec for cell in report.cells]
        assert specs == ["dense", "dense-int8"]
        assert report.all_bit_identical
        ratios = report.quant_decode_ratios()
        assert set(ratios) == {"dense-int8"}
        # Catastrophic-regression floor only: the >= 0.9x acceptance gate
        # runs on serve-llama in CI where timing is meaningful; at this
        # micro scale per-call overhead dominates.
        assert ratios["dense-int8"] > 0.25
        assert report.min_quant_memory_reduction is not None
        assert report.min_quant_memory_reduction > 3.0
        quant_cell = report.cells[1]
        assert quant_cell.bits == 8
        assert quant_cell.memory_reduction_x > 3.0
        assert quant_cell.compound_reduction_x > 3.0
        payload = report.to_dict()
        assert payload["min_quant_memory_reduction"] > 3.0
        assert "dense-int8" in payload["quant_decode_ratios"]
