"""The shared greedy-decoding loop: state machine and session identity."""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.models import build_model
from repro.runtime import DecodeSession, DecodeState
from repro.runtime.decode import FINISH_MAX_TOKENS, FINISH_STOP_TOKEN


class TestDecodeState:
    def test_select_is_argmax(self):
        assert DecodeState.select(np.array([0.1, 3.0, -2.0])) == 1

    def test_budget_termination(self):
        state = DecodeState(max_new_tokens=2)
        assert state.append(5) is None
        assert not state.done
        assert state.append(7) == FINISH_MAX_TOKENS
        assert state.done and state.finish_reason == FINISH_MAX_TOKENS
        assert state.n_generated == 2

    def test_stop_token_wins_over_budget(self):
        state = DecodeState(max_new_tokens=1, stop_token=9)
        assert state.append(9) == FINISH_STOP_TOKEN

    def test_caller_owned_token_list_is_shared(self):
        generated = [1, 2]
        state = DecodeState(max_new_tokens=8, tokens=generated)
        state.append(3)
        assert generated == [1, 2, 3]
        assert state.n_generated == 3


class TestDecodeSession:
    def test_rejects_model_without_cached_surface(self):
        class Stub:
            pass

        assert not DecodeSession.supports(Stub())
        with pytest.raises(ConfigError):
            DecodeSession(Stub())

    def test_supports_llama(self, micro_llama):
        assert DecodeSession.supports(micro_llama)

    @pytest.mark.parametrize("bad_shape", [(2, 3), (1, 2, 3)])
    def test_rejects_bad_prompt_shapes(self, micro_llama, bad_shape):
        micro_llama.eval()
        prompt = np.zeros(bad_shape, dtype=np.int64)
        with pytest.raises(ShapeError):
            DecodeSession(micro_llama).generate(prompt, 3)

    def test_row_prompt_matches_flat_prompt(self, micro_llama):
        """A (1, T) prompt must produce exactly the 1-D prompt's tokens."""
        micro_llama.eval()
        session = DecodeSession(micro_llama)
        flat = np.array([3, 5, 8])
        row = flat.reshape(1, -1)
        np.testing.assert_array_equal(
            session.generate(flat, 6), session.generate(row, 6)
        )

    def test_row_prompt_window_overflow_matches_no_cache(self, micro_llama_config):
        """The cache-full fallback must spend exactly the remaining budget.

        A (1, T) prompt used to corrupt the fallback's remaining-token
        arithmetic (``len(np.asarray(prompt))`` is 1 for a row); both
        orientations must match the pure recompute reference, token for
        token, through a window overflow.
        """
        config = replace(micro_llama_config, max_seq_len=12, name="short-ctx")
        model = build_model(config, rng=np.random.default_rng(9))
        model.eval()
        session = DecodeSession(model)
        flat = np.arange(8) % config.vocab_size
        new_tokens = 10  # 8 + 10 > max_seq_len=12: overflow mid-decode
        reference = session.generate(flat, new_tokens, use_cache=False)
        assert reference.size == flat.size + new_tokens
        for prompt in (flat, flat.reshape(1, -1)):
            cached = session.generate(prompt, new_tokens, use_cache=True)
            np.testing.assert_array_equal(cached, reference)

    def test_generate_matches_model_greedy_generate(self, micro_llama):
        """model.greedy_generate is the same session loop."""
        micro_llama.eval()
        prompt = np.array([2, 11, 5])
        np.testing.assert_array_equal(
            DecodeSession(micro_llama).generate(prompt, 5),
            micro_llama.greedy_generate(prompt, 5),
        )
