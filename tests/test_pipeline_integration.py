"""End-to-end pipeline integration: the full life of a model.

Generate world -> corpus -> tokenizer -> build -> train -> evaluate ->
decompose -> evaluate -> fine-tune -> evaluate -> checkpoint round trip.
Uses a deliberately small model and few steps so the whole pipeline runs
in under a minute while still exercising every subsystem together.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.data import CorpusConfig, World, build_corpus, corpus_vocabulary
from repro.decomposition import DecompositionConfig, decompose_model
from repro.eval import WordTokenizer, build_suite, corpus_perplexity, evaluate_suite
from repro.models import build_model, get_config
from repro.training import TrainConfig, load_checkpoint, save_checkpoint, train_causal_lm


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    world = World.build(seed=3)
    corpus = build_corpus(world, CorpusConfig(script_samples=100,
                                              possession_samples=100,
                                              arithmetic_samples=100))
    tokenizer = WordTokenizer(corpus_vocabulary(world))
    config = replace(
        get_config("tiny-llama").with_vocab(tokenizer.vocab_size), n_layers=4
    )
    model = build_model(config, rng=np.random.default_rng(11))
    log = train_causal_lm(
        model, tokenizer, corpus,
        TrainConfig(steps=120, batch_size=48, lr=3e-3, warmup_steps=10, seed=12),
    )
    return world, corpus, tokenizer, model, log


class TestPipeline:
    def test_training_converged(self, pipeline):
        _, _, _, _, log = pipeline
        assert log.smoothed_final_loss() < 2.0

    def test_model_beats_chance_on_easy_tasks(self, pipeline):
        world, _, tokenizer, model, _ = pipeline
        suite = build_suite(world, names=("arc_easy",), n_items=40)
        result = evaluate_suite(model, tokenizer, suite)
        assert result.accuracy("arc_easy") > 0.40  # chance is 0.25

    def test_perplexity_reasonable(self, pipeline):
        _, corpus, tokenizer, model, _ = pipeline
        ppl = corpus_perplexity(model, tokenizer, corpus[:32]).perplexity
        assert ppl < tokenizer.vocab_size / 5

    def test_decompose_finetune_recover(self, pipeline):
        world, corpus, tokenizer, model, _ = pipeline
        suite = build_suite(world, names=("arc_easy",), n_items=40)
        before = evaluate_suite(model, tokenizer, suite).accuracy("arc_easy")

        gamma = DecompositionConfig.all_tensors(model.config, (1, 2), rank=1)
        decompose_model(model, gamma)
        damaged = evaluate_suite(model, tokenizer, suite).accuracy("arc_easy")

        train_causal_lm(
            model, tokenizer, corpus,
            TrainConfig(steps=60, batch_size=48, lr=1e-3, warmup_steps=5, seed=13),
        )
        recovered = evaluate_suite(model, tokenizer, suite).accuracy("arc_easy")
        # Fine-tuning through the factorized layers must help (or at least
        # not hurt) relative to the freshly damaged model.
        assert recovered >= damaged - 0.05
        assert recovered >= before - 0.35

    def test_checkpoint_round_trip_after_surgery(self, pipeline, tmp_path):
        """A decomposed-and-finetuned model cannot be checkpointed with the
        plain dense loader (its parameter tree changed) — verify the dense
        path still round-trips for an unmodified clone."""
        world, _, tokenizer, model, _ = pipeline
        clone = build_model(model.config)
        path = tmp_path / "clone.npz"
        save_checkpoint(path, clone, tokenizer)
        restored, restored_tok = load_checkpoint(path)
        tokens = np.random.default_rng(14).integers(1, tokenizer.vocab_size, size=(1, 8))
        assert np.allclose(restored(tokens).data, clone(tokens).data, atol=1e-6)
        assert restored_tok.vocab_size == tokenizer.vocab_size
