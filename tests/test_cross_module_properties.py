"""Cross-module property tests: invariants that tie subsystems together."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition import (
    DecompositionConfig,
    design_space_size,
    factorized_parameters,
)
from repro.hwmodel import build_workload, split_tensor_parallel
from repro.models import LLAMA2_7B, get_config
from repro.models.params import decomposed_parameters, total_parameters

_layers = st.lists(st.integers(0, 31), min_size=1, max_size=8, unique=True)
_roles = st.lists(
    st.sampled_from(LLAMA2_7B.tensor_roles), min_size=1, max_size=7, unique=True
)
_rank = st.integers(1, 64)


@settings(max_examples=60, deadline=None)
@given(layers=_layers, roles=_roles, rank=_rank)
def test_random_uniform_configs_are_valid(layers, roles, rank):
    """Every in-range uniform γ satisfies Proposition 3.1."""
    config = DecompositionConfig.uniform(layers, roles, rank=rank)
    assert config.is_valid(LLAMA2_7B)
    assert len(list(config.pairs())) == len(set(layers)) * len(set(roles))


@settings(max_examples=60, deadline=None)
@given(layers=_layers, roles=_roles, rank=st.integers(1, 128))
def test_analytic_reduction_matches_per_tensor_sums(layers, roles, rank):
    """Model-level decomposed parameter counts equal the sum of per-tensor
    compression formulas — two independent accounting paths agree."""
    before = total_parameters(LLAMA2_7B)
    after = decomposed_parameters(LLAMA2_7B, layers, roles, rank)
    expected_delta = 0
    for _ in sorted(set(layers)):
        for role in dict.fromkeys(roles):
            height, width = LLAMA2_7B.tensor_shape(role)
            expected_delta += height * width - factorized_parameters(height, width, rank)
    assert before - after == expected_delta


@settings(max_examples=30, deadline=None)
@given(layers=_layers, roles=_roles)
def test_workload_weight_bytes_track_parameter_savings(layers, roles):
    """The hardware workload's weight traffic shrinks by exactly the FP16
    bytes of the parameters the decomposition removes (matmul weights)."""
    config = DecompositionConfig.uniform(layers, roles, rank=1)
    dense = build_workload(LLAMA2_7B, 1, 128)
    treated = build_workload(LLAMA2_7B, 1, 128, decomposition=config)
    param_delta = total_parameters(LLAMA2_7B) - decomposed_parameters(
        LLAMA2_7B, layers, roles, 1
    )
    byte_delta = dense.weight_bytes - treated.weight_bytes
    assert byte_delta == pytest.approx(2.0 * param_delta, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    n_layers=st.integers(1, 12),
    n_tensors=st.integers(1, 7),
    ranks=st.integers(1, 100),
)
def test_design_space_formula_structure(n_layers, n_tensors, ranks):
    """Theorem 3.2 sanity: adding a layer more than doubles the non-identity
    space; rank choices scale it linearly."""
    base = design_space_size(n_layers, n_tensors, ranks) - 1
    more_layers = design_space_size(n_layers + 1, n_tensors, ranks) - 1
    more_ranks = design_space_size(n_layers, n_tensors, ranks + 1) - 1
    assert more_layers > 2 * base - 1
    assert more_ranks == base // ranks * (ranks + 1)


@settings(max_examples=20, deadline=None)
@given(n_gpus=st.integers(1, 8), layers=_layers, rank=st.integers(1, 64))
def test_tensor_parallel_conserves_totals(n_gpus, layers, rank):
    """Sharding never creates work and never destroys it either: summing
    each op's per-GPU share times its GPU count reproduces the original
    totals exactly, op by op, and the bottleneck share is never below 1/P."""
    config = DecompositionConfig.uniform(layers, ("w_q",), rank=rank)
    workload = build_workload(LLAMA2_7B, 2, 64, decomposition=config)
    sharded = split_tensor_parallel(workload, n_gpus)
    assert sharded.n_kernels == workload.n_kernels
    for original, shard in zip(workload.ops, sharded.ops):
        share = original.shard_share(n_gpus)
        assert 1.0 / n_gpus <= share <= 1.0
        assert shard.flops == pytest.approx(original.flops * share, rel=1e-12)
        assert shard.weight_bytes == pytest.approx(
            original.weight_bytes * share, rel=1e-12
        )
        # Per-GPU work is never below an exact even split of the original.
        assert shard.flops * n_gpus >= original.flops * (1.0 - 1e-12)
    assert sharded.flops >= workload.flops / n_gpus * (1.0 - 1e-12)


@settings(max_examples=20, deadline=None)
@given(rank=st.integers(1, 32), seed=st.integers(0, 2**16))
def test_factorized_linear_parameter_invariant(rank, seed):
    """A FactorizedLinear's live parameter count always matches the
    compression formula used by the analytic accounting."""
    from repro.nn import FactorizedLinear

    rng = np.random.default_rng(seed)
    height, width = 48, 80
    layer = FactorizedLinear(
        rng.normal(size=(height, rank)),
        rng.normal(size=(rank, rank)),
        rng.normal(size=(rank, width)),
    )
    assert layer.num_weight_parameters() == factorized_parameters(height, width, rank)


# ---------------------------------------------------------------------------
# Decode entry points: every user of the decode loop stays exact.
#
# Any module touching DecodeSession/DecodeState/SpeculativeSession is a
# *decode entry point* and must produce tokens identical to plain
# ``greedy_generate``.  The registry below is exhaustive by construction: a
# grep over src/repro enforces that a new decode user cannot appear without
# either registering an identity driver here or consciously marking itself
# as bookkeeping.
# ---------------------------------------------------------------------------

_DECODE_PATTERN = ("DecodeSession", "DecodeState", "SpeculativeSession")

# file (relative to src/) -> why it uses the decode machinery
DECODE_ENTRY_POINTS = {
    "repro/runtime/decode.py": "defines the loop",
    "repro/runtime/__init__.py": "re-exports only",
    "repro/runtime/speculative.py": "drafter/verifier loop",
    "repro/runtime/benchmark.py": "bench-decode harnesses",
    "repro/models/llama.py": "greedy_generate delegates",
    "repro/parallel/local.py": "docstring reference only",
    "repro/serving/request.py": "per-request DecodeState bookkeeping",
    "repro/serving/engine.py": "continuous-batching decode/speculation",
    "repro/eval/task.py": "generative task prediction",
}


def _decode_users():
    import pathlib

    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    found = set()
    for path in sorted((src / "repro").rglob("*.py")):
        text = path.read_text()
        if any(name in text for name in _DECODE_PATTERN):
            found.add(path.relative_to(src).as_posix())
    return found


def test_decode_entry_point_registry_is_exhaustive():
    """A module newly touching the decode machinery must register here (and
    gain an identity driver below) before it can land."""
    found = _decode_users()
    unregistered = found - set(DECODE_ENTRY_POINTS)
    stale = set(DECODE_ENTRY_POINTS) - found
    assert not unregistered, (
        f"unregistered decode entry points {sorted(unregistered)}: add them to "
        "DECODE_ENTRY_POINTS and give them an identity driver in "
        "test_every_decode_entry_point_matches_greedy_generate"
    )
    assert not stale, f"registered decode entry points no longer exist: {sorted(stale)}"


def _drive_decode_session(model, drafter, prompt, max_new):
    from repro.runtime import DecodeSession

    return DecodeSession(model).generate(prompt, max_new)


def _drive_greedy_generate_stateless(model, drafter, prompt, max_new):
    return model.greedy_generate(prompt, max_new, use_cache=False)


def _drive_speculative(model, drafter, prompt, max_new):
    from repro.runtime import SpeculativeSession

    return SpeculativeSession(model, drafter, k=3).generate(prompt, max_new)


def _drive_bench_harness(model, drafter, prompt, max_new):
    # run_spec_bench checks token identity per cell itself; surface the flag.
    from repro.runtime.benchmark import run_spec_bench

    report = run_spec_bench(
        model, drafter_specs=("rank8",), k_values=(2,),
        prompt_tokens=prompt.size, new_tokens=max_new, seed=0,
    )
    assert report.all_tokens_match
    return None


def _drive_engine(model, drafter, prompt, max_new):
    from repro.serving import EngineConfig, InferenceEngine

    engine = InferenceEngine(
        model,
        EngineConfig(max_batch=2, token_budget=16, n_blocks=24, block_tokens=8),
        drafter=drafter,
    )
    plain = engine.submit(prompt, max_new)
    spec = engine.submit(prompt, max_new, speculative=True)
    engine.run_until_idle()
    np.testing.assert_array_equal(plain.tokens, spec.tokens)
    assert engine.pool.used_blocks == 0
    return plain.tokens


def _drive_eval_task(model, drafter, prompt, max_new):
    from repro.eval.task import GenerativeItem, GenerativeTask
    from repro.eval.tokenizer import WordTokenizer

    words = [f"w{i}" for i in range(model.config.vocab_size - 5)]
    tokenizer = WordTokenizer(words)
    assert tokenizer.vocab_size == model.config.vocab_size
    text = " ".join(words[int(t) % len(words)] for t in prompt)
    task = GenerativeTask("probe", [GenerativeItem(text, "w0")],
                          max_new_tokens=max_new)
    predicted = task.predict(model, tokenizer, task.items[0])
    prompt_ids = np.asarray(tokenizer.encode(text, add_bos=True))
    reference = model.greedy_generate(
        prompt_ids, max_new, stop_token=tokenizer.eos_id
    )
    expected_words = tokenizer.decode(reference[len(prompt_ids):]).split()
    assert predicted == (expected_words[0] if expected_words else "")
    return None


# None: the file participates in decoding but has no independent entry point
# (pure definition, re-export, docstring, or state carried for the engine,
# which the engine driver exercises).
DECODE_IDENTITY_DRIVERS = {
    "repro/runtime/decode.py": _drive_decode_session,
    "repro/runtime/__init__.py": None,
    "repro/runtime/speculative.py": _drive_speculative,
    "repro/runtime/benchmark.py": _drive_bench_harness,
    "repro/models/llama.py": _drive_greedy_generate_stateless,
    "repro/parallel/local.py": None,
    "repro/serving/request.py": None,
    "repro/serving/engine.py": _drive_engine,
    "repro/eval/task.py": _drive_eval_task,
}


def test_every_decode_entry_point_matches_greedy_generate():
    """Drive each registered decode entry point on one shared tiny model and
    require token identity with cached ``greedy_generate``."""
    from repro.models import build_model
    from repro.models.config import ModelConfig
    from repro.serving import VariantRegistry

    assert set(DECODE_IDENTITY_DRIVERS) == set(DECODE_ENTRY_POINTS)
    config = ModelConfig(
        name="xmod-llama", family="llama", vocab_size=64, dim=32,
        n_layers=2, n_heads=4, n_kv_heads=2, mlp_hidden=48, max_seq_len=48,
    )
    model = build_model(config, rng=np.random.default_rng(9))
    model.eval()
    drafter = VariantRegistry(model).get("rank8").model
    rng = np.random.default_rng(10)
    prompt = rng.integers(6, config.vocab_size, size=7, dtype=np.int64)
    max_new = 6
    reference = model.greedy_generate(prompt, max_new)
    for entry, driver in DECODE_IDENTITY_DRIVERS.items():
        if driver is None:
            continue
        tokens = driver(model, drafter, prompt, max_new)
        if tokens is not None:
            np.testing.assert_array_equal(tokens, reference, err_msg=entry)
