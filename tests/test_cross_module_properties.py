"""Cross-module property tests: invariants that tie subsystems together."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition import (
    DecompositionConfig,
    design_space_size,
    factorized_parameters,
)
from repro.hwmodel import build_workload, split_tensor_parallel
from repro.models import LLAMA2_7B, get_config
from repro.models.params import decomposed_parameters, total_parameters

_layers = st.lists(st.integers(0, 31), min_size=1, max_size=8, unique=True)
_roles = st.lists(
    st.sampled_from(LLAMA2_7B.tensor_roles), min_size=1, max_size=7, unique=True
)
_rank = st.integers(1, 64)


@settings(max_examples=60, deadline=None)
@given(layers=_layers, roles=_roles, rank=_rank)
def test_random_uniform_configs_are_valid(layers, roles, rank):
    """Every in-range uniform γ satisfies Proposition 3.1."""
    config = DecompositionConfig.uniform(layers, roles, rank=rank)
    assert config.is_valid(LLAMA2_7B)
    assert len(list(config.pairs())) == len(set(layers)) * len(set(roles))


@settings(max_examples=60, deadline=None)
@given(layers=_layers, roles=_roles, rank=st.integers(1, 128))
def test_analytic_reduction_matches_per_tensor_sums(layers, roles, rank):
    """Model-level decomposed parameter counts equal the sum of per-tensor
    compression formulas — two independent accounting paths agree."""
    before = total_parameters(LLAMA2_7B)
    after = decomposed_parameters(LLAMA2_7B, layers, roles, rank)
    expected_delta = 0
    for _ in sorted(set(layers)):
        for role in dict.fromkeys(roles):
            height, width = LLAMA2_7B.tensor_shape(role)
            expected_delta += height * width - factorized_parameters(height, width, rank)
    assert before - after == expected_delta


@settings(max_examples=30, deadline=None)
@given(layers=_layers, roles=_roles)
def test_workload_weight_bytes_track_parameter_savings(layers, roles):
    """The hardware workload's weight traffic shrinks by exactly the FP16
    bytes of the parameters the decomposition removes (matmul weights)."""
    config = DecompositionConfig.uniform(layers, roles, rank=1)
    dense = build_workload(LLAMA2_7B, 1, 128)
    treated = build_workload(LLAMA2_7B, 1, 128, decomposition=config)
    param_delta = total_parameters(LLAMA2_7B) - decomposed_parameters(
        LLAMA2_7B, layers, roles, 1
    )
    byte_delta = dense.weight_bytes - treated.weight_bytes
    assert byte_delta == pytest.approx(2.0 * param_delta, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    n_layers=st.integers(1, 12),
    n_tensors=st.integers(1, 7),
    ranks=st.integers(1, 100),
)
def test_design_space_formula_structure(n_layers, n_tensors, ranks):
    """Theorem 3.2 sanity: adding a layer more than doubles the non-identity
    space; rank choices scale it linearly."""
    base = design_space_size(n_layers, n_tensors, ranks) - 1
    more_layers = design_space_size(n_layers + 1, n_tensors, ranks) - 1
    more_ranks = design_space_size(n_layers, n_tensors, ranks + 1) - 1
    assert more_layers > 2 * base - 1
    assert more_ranks == base // ranks * (ranks + 1)


@settings(max_examples=20, deadline=None)
@given(n_gpus=st.integers(1, 8), layers=_layers, rank=st.integers(1, 64))
def test_tensor_parallel_conserves_totals(n_gpus, layers, rank):
    """Sharding never creates work and never destroys it either: summing
    each op's per-GPU share times its GPU count reproduces the original
    totals exactly, op by op, and the bottleneck share is never below 1/P."""
    config = DecompositionConfig.uniform(layers, ("w_q",), rank=rank)
    workload = build_workload(LLAMA2_7B, 2, 64, decomposition=config)
    sharded = split_tensor_parallel(workload, n_gpus)
    assert sharded.n_kernels == workload.n_kernels
    for original, shard in zip(workload.ops, sharded.ops):
        share = original.shard_share(n_gpus)
        assert 1.0 / n_gpus <= share <= 1.0
        assert shard.flops == pytest.approx(original.flops * share, rel=1e-12)
        assert shard.weight_bytes == pytest.approx(
            original.weight_bytes * share, rel=1e-12
        )
        # Per-GPU work is never below an exact even split of the original.
        assert shard.flops * n_gpus >= original.flops * (1.0 - 1e-12)
    assert sharded.flops >= workload.flops / n_gpus * (1.0 - 1e-12)


@settings(max_examples=20, deadline=None)
@given(rank=st.integers(1, 32), seed=st.integers(0, 2**16))
def test_factorized_linear_parameter_invariant(rank, seed):
    """A FactorizedLinear's live parameter count always matches the
    compression formula used by the analytic accounting."""
    from repro.nn import FactorizedLinear

    rng = np.random.default_rng(seed)
    height, width = 48, 80
    layer = FactorizedLinear(
        rng.normal(size=(height, rank)),
        rng.normal(size=(rank, rank)),
        rng.normal(size=(rank, width)),
    )
    assert layer.num_weight_parameters() == factorized_parameters(height, width, rank)
