"""The ``repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCommands:
    def test_experiments_lists_artifacts(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for artifact in ("table1", "fig9", "fig12", "ext-finetune"):
            assert artifact in out

    def test_run_table(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "O(2^37)" in out

    def test_run_with_unknown_experiment(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["run", "fig99"])

    def test_run_accuracy_experiment_with_limit(self, capsys, trained_llama):
        assert main(["run", "fig7", "--limit", "10"]) == 0
        out = capsys.readouterr().out
        assert "aggregate accuracy" in out

    def test_eval_command(self, capsys, trained_llama):
        assert main(["eval", "--limit", "10"]) == 0
        out = capsys.readouterr().out
        assert "arc_easy" in out and "mean" in out

    def test_train_loads_cached(self, capsys, trained_llama):
        assert main(["train", "--model", "tiny-llama"]) == 0
        assert "tiny-llama ready" in capsys.readouterr().out

    def test_serve_bench_smoke(self, capsys):
        assert main([
            "serve-bench",
            "--model", "tiny-llama",
            "--variants", "dense,pr33",
            "--requests", "8",
            "--prompt-len", "4:12",
            "--new-tokens", "2:5",
            "--max-batch", "4",
            "--token-budget", "24",
            "--blocks", "32",
            "--block-tokens", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "serve-bench: tiny-llama" in out
        assert "dense" in out and "pr33" in out
        assert "measured decode speedup over dense" in out

    def test_serve_bench_bad_range(self):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--prompt-len", "banana"])

    def test_serve_bench_unknown_variant(self):
        from repro.errors import ServingError

        with pytest.raises(ServingError):
            main(["serve-bench", "--requests", "2", "--variants", "warp9"])
