"""Smoke tests: every example script runs end to end.

The heavy examples get tiny parameters; all rely on the cached pretrained
model, so the suite stays fast after the first session.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(name: str, argv=()):
    saved = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved


class TestExamples:
    def test_quickstart(self, trained_llama, capsys):
        _run("quickstart.py")
        out = capsys.readouterr().out
        assert "baseline accuracy" in out
        assert "fewer parameters" in out

    def test_design_space_tour(self, capsys):
        _run("design_space_tour.py")
        out = capsys.readouterr().out
        assert "O(2^37)" in out
        assert "Theorem 3.2 predicts" in out

    def test_hardware_projection(self, capsys):
        _run("hardware_projection.py")
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "power-trace" in out

    def test_compress_and_evaluate(self, trained_llama, capsys):
        _run("compress_and_evaluate.py", ["10"])
        out = capsys.readouterr().out
        assert "headline" in out

    def test_train_tiny_llama(self, capsys):
        _run("train_tiny_llama.py", ["3"])
        out = capsys.readouterr().out
        assert "trained 3 steps" in out

    def test_generation_demo(self, trained_llama, capsys):
        _run("generation_demo.py")
        out = capsys.readouterr().out
        assert "asking the trained tiny Llama" in out
        assert "tok/s" in out

    def test_serving_benchmark(self, capsys):
        _run("serving_benchmark.py", ["10"])
        out = capsys.readouterr().out
        assert "serve-bench: serve-llama" in out
        assert "measured decode speedup over dense" in out

    def test_compression_comparison(self, trained_llama, capsys):
        _run("compression_comparison.py", ["10"])
        out = capsys.readouterr().out
        assert "int8 quant" in out
        assert "accuracy by method" in out
