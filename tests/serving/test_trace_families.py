"""Production-shaped trace families: determinism and shape properties."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    TRACE_FAMILIES,
    bursty_trace,
    diurnal_trace,
    heavy_tail_trace,
    make_trace,
    poisson_trace,
    shared_prefix_trace,
    trace_stats,
)

VOCAB = 128


def arrivals(trace):
    return np.asarray([t.arrival_time for t in trace])


class TestEveryFamily:
    @pytest.mark.parametrize("family", sorted(TRACE_FAMILIES))
    def test_deterministic_for_seed(self, family):
        a = make_trace(family, 40, 30.0, VOCAB, seed=5)
        b = make_trace(family, 40, 30.0, VOCAB, seed=5)
        c = make_trace(family, 40, 30.0, VOCAB, seed=6)
        for x, y in zip(a, b):
            assert x.arrival_time == y.arrival_time
            np.testing.assert_array_equal(x.prompt, y.prompt)
            assert x.max_new_tokens == y.max_new_tokens
        assert any(
            x.arrival_time != y.arrival_time or not np.array_equal(x.prompt, y.prompt)
            for x, y in zip(a, c)
        )

    @pytest.mark.parametrize("family", sorted(TRACE_FAMILIES))
    def test_well_formed(self, family):
        trace = make_trace(family, 40, 30.0, VOCAB, seed=1)
        assert len(trace) == 40
        times = arrivals(trace)
        assert np.all(np.diff(times) >= 0) and np.all(times > 0)
        for request in trace:
            assert request.prompt.size >= 1
            assert request.max_new_tokens >= 1
            assert request.prompt.min() >= 0 and request.prompt.max() < VOCAB

    def test_unknown_family_raises(self):
        with pytest.raises(ServingError, match="unknown trace family"):
            make_trace("tsunami", 10, 1.0, VOCAB)

    @pytest.mark.parametrize("family", sorted(TRACE_FAMILIES))
    def test_validation_rejects_bad_rate(self, family):
        with pytest.raises(ServingError):
            make_trace(family, 10, 0.0, VOCAB)


class TestShapes:
    def test_poisson_gap_cv_near_one(self):
        stats = trace_stats(poisson_trace(400, 50.0, VOCAB, seed=0))
        assert 0.8 < stats["gap_cv"] < 1.25

    def test_bursty_gaps_overdispersed(self):
        trace = bursty_trace(400, 20.0, VOCAB, burst_factor=10.0, seed=0)
        stats = trace_stats(trace)
        assert stats["gap_cv"] > 1.3, "bursty trace should beat Poisson dispersion"

    def test_diurnal_rate_swings(self):
        trace = diurnal_trace(
            600, 20.0, VOCAB, peak_ratio=6.0, period_s=4.0, seed=0
        )
        times = arrivals(trace)
        # Arrival counts per phase bucket: peaks must dominate troughs.
        phase = (times % 4.0) / 4.0
        peak = np.sum((phase > 0.3) & (phase < 0.7))  # cos minimum at 0.5
        trough = np.sum((phase < 0.2) | (phase > 0.8))
        assert peak > 2 * trough

    def test_heavy_tail_lengths_skewed(self):
        trace = heavy_tail_trace(
            500, 50.0, VOCAB, prompt_len=(4, 64), sigma=1.0, seed=0
        )
        lengths = np.asarray([t.prompt.size for t in trace])
        assert np.mean(lengths) > np.median(lengths), "tail should pull the mean up"
        assert lengths.min() >= 4 and lengths.max() <= 64

    def test_prefix_trace_shares_tenant_prefixes(self):
        trace = shared_prefix_trace(
            100, 50.0, VOCAB, n_tenants=3, prefix_tokens=16, seed=0
        )
        by_tenant = {}
        for request in trace:
            by_tenant.setdefault(request.tenant, []).append(request.prompt[:16])
        assert set(by_tenant) <= {0, 1, 2} and len(by_tenant) > 1
        for prompts in by_tenant.values():
            for prompt in prompts[1:]:
                np.testing.assert_array_equal(prompt, prompts[0])

    def test_prefix_trace_zipf_skews_popularity(self):
        trace = shared_prefix_trace(
            300, 50.0, VOCAB, n_tenants=4, zipf_alpha=1.5, seed=0
        )
        counts = np.bincount([t.tenant for t in trace], minlength=4)
        assert counts[0] > counts[-1], "tenant 0 should dominate under Zipf"

    def test_stats_summary_fields(self):
        stats = trace_stats(shared_prefix_trace(50, 25.0, VOCAB, seed=2))
        assert stats["n_requests"] == 50
        assert stats["n_tenants"] >= 1
        assert stats["prompt_mean"] > 0 and stats["span_s"] > 0


class TestSharedGenerator:
    def test_one_generator_threads_through(self):
        """Passing an rng draws from it (stateful), while seed= alone is
        reproducible — the single-Generator contract."""
        rng = np.random.default_rng(0)
        first = poisson_trace(10, 10.0, VOCAB, rng=rng)
        second = poisson_trace(10, 10.0, VOCAB, rng=rng)
        assert any(
            x.arrival_time != y.arrival_time for x, y in zip(first, second)
        ), "shared generator must advance across calls"
        again = poisson_trace(10, 10.0, VOCAB, rng=np.random.default_rng(0))
        for x, y in zip(first, again):
            assert x.arrival_time == y.arrival_time
            np.testing.assert_array_equal(x.prompt, y.prompt)

    def test_seed_equals_fresh_generator(self):
        a = make_trace("bursty", 20, 15.0, VOCAB, seed=42)
        b = make_trace("bursty", 20, 15.0, VOCAB, rng=np.random.default_rng(42))
        for x, y in zip(a, b):
            assert x.arrival_time == y.arrival_time
            np.testing.assert_array_equal(x.prompt, y.prompt)


class TestQoSAssignment:
    MIX = {"gold": 0.25, "interactive": 0.35, "batch": 0.4}

    def test_untagged_by_default(self):
        trace = make_trace("poisson", 10, 20.0, VOCAB, seed=0)
        assert all(t.qos is None for t in trace)

    def test_mix_tags_every_request(self):
        trace = make_trace("poisson", 60, 20.0, VOCAB, seed=0, qos_mix=self.MIX)
        assert all(t.qos in self.MIX for t in trace)
        seen = {t.qos for t in trace}
        assert seen == set(self.MIX)

    def test_tagging_is_deterministic_for_seed(self):
        a = make_trace("bursty", 40, 30.0, VOCAB, seed=5, qos_mix=self.MIX)
        b = make_trace("bursty", 40, 30.0, VOCAB, seed=5, qos_mix=self.MIX)
        assert [t.qos for t in a] == [t.qos for t in b]

    def test_tagging_leaves_arrivals_and_prompts_unchanged(self):
        """QoS sampling consumes the rng *after* the family draws, so a
        tagged trace is the untagged trace plus labels."""
        plain = make_trace("bursty", 40, 30.0, VOCAB, seed=5)
        tagged = make_trace("bursty", 40, 30.0, VOCAB, seed=5, qos_mix=self.MIX)
        for x, y in zip(plain, tagged):
            assert x.arrival_time == y.arrival_time
            np.testing.assert_array_equal(x.prompt, y.prompt)
            assert x.max_new_tokens == y.max_new_tokens

    def test_shares_respected_roughly(self):
        trace = make_trace(
            "poisson", 400, 20.0, VOCAB, seed=1, qos_mix=self.MIX
        )
        share = sum(1 for t in trace if t.qos == "batch") / len(trace)
        assert 0.3 < share < 0.5

    def test_explicit_assign_qos(self):
        from repro.serving import assign_qos

        trace = make_trace("poisson", 10, 20.0, VOCAB, seed=0)
        tagged = assign_qos(trace, {"gold": 1.0}, np.random.default_rng(0))
        assert all(t.qos == "gold" for t in tagged)
        assert all(t.qos is None for t in trace)  # input untouched

    def test_invalid_mix_rejected(self):
        with pytest.raises(ServingError):
            make_trace("poisson", 4, 20.0, VOCAB, seed=0, qos_mix={})
        with pytest.raises(ServingError):
            make_trace(
                "poisson", 4, 20.0, VOCAB, seed=0, qos_mix={"gold": -1.0}
            )

    def test_stats_count_classes(self):
        trace = make_trace("poisson", 30, 20.0, VOCAB, seed=0, qos_mix=self.MIX)
        assert trace_stats(trace)["n_qos_classes"] == len(self.MIX)
        untagged = make_trace("poisson", 30, 20.0, VOCAB, seed=0)
        assert trace_stats(untagged)["n_qos_classes"] == 0
