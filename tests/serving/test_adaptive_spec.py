"""Acceptance-aware adaptive draft length (``spec_adaptive`` engines).

The contract: adaptation only moves the draft/verify split — committed
tokens stay identical to ``greedy_generate`` — while each request's K
follows an EMA of its own acceptance rate, clamped to [1, spec_k], with
the first cycle probing at the engine's full K.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    RequestState,
    VariantRegistry,
)


@pytest.fixture(scope="module")
def drafter(smoke_model):
    return VariantRegistry(smoke_model).get("rank8").model


@pytest.fixture(scope="module")
def bad_drafter(smoke_model):
    """A drafter crushed to rank 1: low acceptance, so K should shrink."""
    return VariantRegistry(smoke_model).get("rank1").model


def adaptive_engine(model, drafter, **overrides):
    defaults = dict(
        max_batch=4, token_budget=24, n_blocks=24, block_tokens=8,
        spec_k=4, spec_adaptive=True,
    )
    defaults.update(overrides)
    return InferenceEngine(model, EngineConfig(**defaults), drafter=drafter)


def assert_exact(engine, requests):
    for request in requests:
        assert request.state is RequestState.FINISHED, request.finish_reason
        expected = engine.model.greedy_generate(
            request.prompt,
            max_new_tokens=request.max_new_tokens,
            stop_token=request.stop_token,
        )
        np.testing.assert_array_equal(request.tokens, expected)


class TestConfig:
    def test_alpha_validated(self, smoke_model):
        with pytest.raises(ServingError):
            EngineConfig(spec_adaptive=True, spec_ema_alpha=0.0)
        with pytest.raises(ServingError):
            EngineConfig(spec_adaptive=True, spec_ema_alpha=1.5)


class TestAdaptiveK:
    def test_tokens_identical_to_reference(self, smoke_model, drafter):
        engine = adaptive_engine(smoke_model, drafter)
        rng = np.random.default_rng(11)
        requests = [
            engine.submit(
                rng.integers(0, 128, size=int(rng.integers(3, 9))),
                int(rng.integers(6, 14)),
                speculative=True,
            )
            for _ in range(5)
        ]
        engine.run_until_idle()
        assert_exact(engine, requests)

    def test_first_cycle_probes_at_full_k(self, smoke_model, drafter):
        engine = adaptive_engine(smoke_model, drafter)
        request = engine.submit(np.array([5, 9, 2, 7]), 8, speculative=True)
        # Before any verify cycle the request has no acceptance history,
        # so the engine drafts at its configured maximum.
        assert request.spec_acceptance_ema is None
        assert engine._spec_k_for(request) == engine.config.spec_k
        engine.run_until_idle()
        assert_exact(engine, [request])
        assert request.spec_acceptance_ema is not None
        assert 0.0 <= request.spec_acceptance_ema <= 1.0
        assert 1 <= request.spec_k_current <= engine.config.spec_k

    def test_k_tracks_acceptance_ema(self, smoke_model, drafter):
        engine = adaptive_engine(smoke_model, drafter)
        request = engine.submit(np.arange(4), 8, speculative=True)
        engine._update_spec_k(request, accepted=0, drafted=4)
        assert request.spec_acceptance_ema == 0.0
        assert request.spec_k_current == 1  # clamped at the floor
        engine._update_spec_k(request, accepted=4, drafted=4)
        # EMA with alpha=0.5: 0.0 + 0.5 * (1.0 - 0.0) = 0.5 -> K = 2
        assert request.spec_acceptance_ema == pytest.approx(0.5)
        assert request.spec_k_current == 2
        engine._update_spec_k(request, accepted=4, drafted=4)
        assert request.spec_acceptance_ema == pytest.approx(0.75)
        assert request.spec_k_current == 3

    def test_weak_drafter_shrinks_k(self, smoke_model, bad_drafter):
        """A low-acceptance drafter pulls per-request K below the cap while
        outputs stay exact."""
        engine = adaptive_engine(smoke_model, bad_drafter)
        rng = np.random.default_rng(17)
        requests = [
            engine.submit(
                rng.integers(0, 128, size=int(rng.integers(4, 10))),
                12,
                speculative=True,
            )
            for _ in range(4)
        ]
        engine.run_until_idle()
        assert_exact(engine, requests)
        final_ks = [r.spec_k_current for r in requests if r.spec_k_current]
        assert final_ks, "no request completed a verify cycle"
        assert min(final_ks) < engine.config.spec_k

    def test_fixed_k_engine_leaves_state_untouched(self, smoke_model, drafter):
        """Without ``spec_adaptive`` the per-request adaptation fields stay
        None — the historical fixed-K behavior byte for byte."""
        engine = adaptive_engine(smoke_model, drafter, spec_adaptive=False)
        request = engine.submit(np.array([3, 1, 4]), 6, speculative=True)
        engine.run_until_idle()
        assert_exact(engine, [request])
        assert request.spec_acceptance_ema is None
        assert request.spec_k_current is None
