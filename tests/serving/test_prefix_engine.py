"""Cross-request prefix sharing under the engine: exactness and accounting.

The paged store is only admissible if it is invisible in the output:
token-for-token identity with the per-request-pool engine on every trace,
at tp=1 and tp=2, with and without speculative decoding.  On top of that,
the whole point — N requests with a common P-token prefix incur exactly
one P-token prefill — is asserted via the engine's prefill-token
accounting, not just a hit-rate heuristic.
"""

import numpy as np
import pytest

from repro.serving import (
    EngineConfig,
    InferenceEngine,
    RequestState,
    TraceRequest,
    VariantRegistry,
    replay_trace,
    shared_prefix_trace,
)
from repro.serving.bench import bench_variant
from repro.serving.paged import PagedKVStore


def engine_config(**overrides):
    defaults = dict(max_batch=4, token_budget=32, n_blocks=32, block_tokens=8)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def prefix_trace(smoke_config, n=10, seed=0, rate=200.0):
    return shared_prefix_trace(
        n,
        rate_rps=rate,
        vocab_size=smoke_config.vocab_size,
        n_tenants=2,
        prefix_tokens=16,
        suffix_len=(2, 8),
        new_tokens=(2, 6),
        seed=seed,
    )


@pytest.fixture(scope="module")
def drafter(smoke_model):
    return VariantRegistry(smoke_model).get("rank8").model


def replay_with(model, trace, config, drafter_model=None):
    engine = InferenceEngine(model, config, drafter=drafter_model)
    requests = replay_trace(engine, trace, speculative=drafter_model is not None)
    return engine, requests


class TestTokenIdentity:
    """Paged output == unshared output: {tp1, tp2} x {plain, speculative}."""

    @pytest.mark.parametrize("tp", [1, 2])
    @pytest.mark.parametrize("speculative", [False, True])
    def test_identity_with_unshared_engine(
        self, smoke_model, smoke_config, drafter, tp, speculative
    ):
        trace = prefix_trace(smoke_config, seed=tp + 2 * speculative)
        drafter_model = drafter if speculative else None

        def serve(prefix_sharing):
            if tp > 1:
                from repro.parallel import ShardedLlama

                sharded = ShardedLlama(smoke_model, tp)
                try:
                    engine, requests = replay_with(
                        sharded,
                        trace,
                        engine_config(prefix_sharing=prefix_sharing),
                        drafter_model,
                    )
                    return engine.metrics, requests
                finally:
                    sharded.close()
            engine, requests = replay_with(
                smoke_model,
                trace,
                engine_config(prefix_sharing=prefix_sharing),
                drafter_model,
            )
            return engine.metrics, requests

        paged_metrics, paged = serve(prefix_sharing=True)
        _, unshared = serve(prefix_sharing=False)
        assert paged_metrics.prefix_hits > 0, "trace never exercised sharing"
        for ours, theirs in zip(paged, unshared):
            assert ours.state is theirs.state
            np.testing.assert_array_equal(ours.tokens, theirs.tokens)

    def test_exact_against_sequential_generate(self, smoke_model, smoke_config):
        trace = prefix_trace(smoke_config, seed=9)
        engine, requests = replay_with(smoke_model, trace, engine_config())
        finished = [r for r in requests if r.state is RequestState.FINISHED]
        assert finished
        for request in finished:
            np.testing.assert_array_equal(
                request.tokens,
                smoke_model.greedy_generate(
                    request.prompt, max_new_tokens=request.max_new_tokens
                ),
            )


class TestPrefillAccounting:
    def test_shared_prefix_prefilled_exactly_once(self, smoke_model, smoke_config):
        """N requests, one common P-token prefix, spaced arrivals: the
        engine prefills P tokens once; every later request prefills only
        its private suffix."""
        rng = np.random.default_rng(5)
        prefix = rng.integers(0, smoke_config.vocab_size, size=16)
        trace = []
        for i in range(6):
            suffix = rng.integers(0, smoke_config.vocab_size, size=4 + i % 3)
            trace.append(
                TraceRequest(
                    arrival_time=1000.0 * i,  # strictly sequential
                    prompt=np.concatenate([prefix, suffix]),
                    max_new_tokens=3,
                )
            )
        engine, requests = replay_with(smoke_model, trace, engine_config())
        assert all(r.state is RequestState.FINISHED for r in requests)
        total_prompt = sum(r.prompt.size for r in requests)
        saved = 16 * (len(requests) - 1)
        assert engine.metrics.prefill_tokens == total_prompt - saved
        assert engine.metrics.prefill_tokens_saved == saved
        assert engine.metrics.prefix_hits == len(requests) - 1

    def test_pool_drains_after_trace(self, smoke_model, smoke_config):
        trace = prefix_trace(smoke_config, seed=3)
        engine, _ = replay_with(smoke_model, trace, engine_config())
        assert isinstance(engine.pool, PagedKVStore)
        assert engine.pool.used_blocks == 0
        assert engine.pool.cached_blocks > 0  # warm prefixes remain


class TestPressure:
    def test_preemption_with_sharing_stays_exact(self, smoke_model, smoke_config):
        trace = prefix_trace(smoke_config, n=12, seed=7, rate=1000.0)
        engine, requests = replay_with(
            smoke_model, trace, engine_config(n_blocks=6)
        )
        assert engine.metrics.preemptions > 0, "store was never under pressure"
        for request in requests:
            assert request.state is RequestState.FINISHED
            np.testing.assert_array_equal(
                request.tokens,
                smoke_model.greedy_generate(
                    request.prompt, max_new_tokens=request.max_new_tokens
                ),
            )
        assert engine.pool.used_blocks == 0

    def test_exhaustion_throttles_admission_not_crash(self, smoke_model, smoke_config):
        """An undersized store rejects or delays work; it never raises out
        of the replay loop."""
        trace = prefix_trace(smoke_config, n=10, seed=11, rate=2000.0)
        engine, requests = replay_with(
            smoke_model,
            trace,
            engine_config(n_blocks=4, max_batch=2, max_queue=2, token_budget=16),
        )
        assert all(r.done for r in requests)
        ok = [r for r in requests if r.state is RequestState.FINISHED]
        rejected = [r for r in requests if r.state is RequestState.REJECTED]
        assert ok, "nothing finished under pressure"
        assert rejected, "undersized store never throttled admission"
        assert engine.pool.used_blocks == 0


class TestBenchIntegration:
    def test_bench_variant_verifies_identity_and_reports_sharing(
        self, smoke_model, smoke_config
    ):
        trace = prefix_trace(smoke_config, n=8, seed=1)
        variant = VariantRegistry(smoke_model).get("dense")
        result = bench_variant(
            variant, trace, engine_config=engine_config(), verify_identity=True
        )
        assert result.tokens_match_unshared is True
        assert result.prefix_hits > 0
        assert result.prefill_tokens_saved > 0
        assert 0.0 < result.prefix_hit_rate <= 1.0
        assert len(result.requests) == len(trace)
        assert result.ttft_p99_s >= result.ttft_p95_s >= 0.0
