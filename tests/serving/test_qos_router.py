"""QoS classes, the load-aware rank router, and goodput scoring.

The deterministic core: a ``VirtualTimer`` plus per-variant ``MeteredModel``
wrappers make every step duration an exact function of which variants served
which rows, so routing decisions — and therefore goodput — are reproducible
bit for bit.  The headline property mirrors the subsystem's acceptance
criterion: on a bursty trace the routed replay's goodput beats every fixed
variant replaying the identical trace.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    DEFAULT_QOS_CLASSES,
    QUALITY_LADDER,
    EngineConfig,
    InferenceEngine,
    QoSClass,
    RankRouter,
    RouterConfig,
    ScriptedRouter,
    VariantRegistry,
    calibrate_unit,
    goodput_summary,
    ladder_index,
    make_trace,
    qos_catalog,
    qos_mix,
    replay_trace,
    request_records,
)


class VirtualTimer:
    """A clock the metered models advance; injected as the engine timer."""

    def __init__(self) -> None:
        self.now_s = 0.0

    def __call__(self) -> float:
        return self.now_s

    def advance(self, dt_s: float) -> None:
        self.now_s += dt_s


class MeteredModel:
    """Wraps a variant model; each forward advances the virtual clock by a
    per-token cost, making step durations (and router behaviour) exact."""

    def __init__(self, inner, timer: VirtualTimer, per_token_s: float) -> None:
        self._inner = inner
        self._timer = timer
        self._per_token_s = per_token_s

    def forward_ragged(self, tokens, caches, new_lengths):
        self._timer.advance(self._per_token_s * int(sum(new_lengths)))
        return self._inner.forward_ragged(tokens, caches, new_lengths)

    def eval(self):
        self._inner.eval()
        return self

    def __getattr__(self, name):
        return getattr(self._inner, name)


#: Virtual per-token model time: dense is 5x the cheapest rung, mirroring
#: the real decode-speed ordering of the ladder on perf-sized models.
VIRTUAL_COST_S = {"dense": 5e-3, "rank8": 2e-3, "rank1": 1e-3}


def engine_config(**overrides):
    defaults = dict(max_batch=4, token_budget=32, n_blocks=48, block_tokens=8)
    defaults.update(overrides)
    return EngineConfig(**defaults)


class TestQoSClass:
    def test_validation(self):
        with pytest.raises(ServingError):
            QoSClass("", quality_floor="dense")
        with pytest.raises(ServingError):
            QoSClass("a", quality_floor="dense", share=0.0)
        with pytest.raises(ServingError):
            QoSClass("a", quality_floor="dense", ttft_slo_units=-1.0)

    def test_resolve_scales_units(self):
        cls = QoSClass("gold", quality_floor="dense", ttft_slo_units=10.0)
        assert cls.resolve(0.02).ttft_slo_s == pytest.approx(0.2)

    def test_absolute_slo_wins(self):
        cls = QoSClass(
            "gold", quality_floor="dense", ttft_slo_units=10.0, ttft_slo_s=0.5
        )
        assert cls.resolve(0.02).ttft_slo_s == 0.5

    def test_resolve_without_unit_raises(self):
        cls = QoSClass("gold", quality_floor="dense", ttft_slo_units=10.0)
        with pytest.raises(ServingError):
            cls.resolve(None)

    def test_catalog_rejects_duplicates(self):
        cls = QoSClass("gold", quality_floor="dense")
        with pytest.raises(ServingError):
            qos_catalog([cls, cls])

    def test_default_catalog_spans_ladder(self):
        floors = {cls.quality_floor for cls in DEFAULT_QOS_CLASSES}
        assert floors == set(QUALITY_LADDER)
        assert sum(qos_mix().values()) == pytest.approx(1.0)

    def test_ladder_index_unknown_below_cheapest(self):
        assert ladder_index(QUALITY_LADDER, "dense") == 0
        assert ladder_index(QUALITY_LADDER, "nope") == len(QUALITY_LADDER)
        assert ladder_index(QUALITY_LADDER, None) == len(QUALITY_LADDER)


class TestRouterConfig:
    def test_band_required(self):
        with pytest.raises(ServingError):
            RouterConfig(degrade_at=2, upgrade_at=2)

    def test_dwell_positive(self):
        with pytest.raises(ServingError):
            RouterConfig(dwell_steps=0)


class TestRankRouter:
    def make(self, **overrides):
        defaults = dict(degrade_at=4, upgrade_at=1, dwell_steps=2)
        defaults.update(overrides)
        return RankRouter(QUALITY_LADDER, RouterConfig(**defaults))

    def test_ladder_validation(self):
        with pytest.raises(ServingError):
            RankRouter(("dense",))
        with pytest.raises(ServingError):
            RankRouter(("dense", "dense"))

    def test_degrades_at_watermark(self):
        router = self.make()
        assert router.observe(0.0, queue_depth=1, running=2) is None
        decision = router.observe(0.1, queue_depth=3, running=2)
        assert decision.action == "degrade"
        assert router.level == 1
        assert router.variant_for(None) == "rank8"

    def test_dwell_spaces_changes(self):
        router = self.make(dwell_steps=3)
        assert router.observe(0.0, 8, 0).action == "degrade"
        assert router.observe(0.1, 8, 0) is None
        assert router.observe(0.2, 8, 0) is None
        assert router.observe(0.3, 8, 0).action == "degrade"
        assert router.level == 2

    def test_clamps_at_ladder_ends(self):
        router = self.make(dwell_steps=1)
        for _ in range(5):
            router.observe(0.0, 10, 0)
        assert router.level == len(QUALITY_LADDER) - 1
        for _ in range(5):
            router.observe(1.0, 0, 0)
        assert router.level == 0
        assert router.downgrades == 2
        assert router.upgrades == 2

    def test_floor_clamps_variant(self):
        router = self.make(dwell_steps=1)
        router.observe(0.0, 10, 0)
        router.observe(0.0, 10, 0)
        assert router.level == 2
        assert router.variant_for("dense") == "dense"
        assert router.variant_for("rank8") == "rank8"
        assert router.variant_for("rank1") == "rank1"
        assert router.variant_for(None) == "rank1"

    def test_unknown_floor_raises(self):
        with pytest.raises(ServingError):
            self.make().variant_for("rank999")

    def test_projected_ttft_tracks_ema(self):
        router = self.make()
        router.note_step(0.1)
        assert router.projected_ttft_s(4) == pytest.approx(0.4)

    def test_snapshot_round_trips_decisions(self):
        router = self.make(dwell_steps=1)
        router.observe(0.5, 10, 2)
        snap = router.snapshot()
        assert snap["level"] == 1
        assert snap["decisions"][0]["action"] == "degrade"
        assert snap["decisions"][0]["from"] == "dense"
        assert snap["decisions"][0]["to"] == "rank8"


class TestProjectedWatermark:
    """``watermark="projected"`` swaps the ladder's signal from integer
    backlog marks to projected-TTFT seconds (backlog x EMA step time)."""

    def make(self, **overrides):
        defaults = dict(
            watermark="projected",
            degrade_ttft_s=0.5,
            upgrade_ttft_s=0.1,
            dwell_steps=1,
        )
        defaults.update(overrides)
        return RankRouter(QUALITY_LADDER, RouterConfig(**defaults))

    def test_mode_validated(self):
        with pytest.raises(ServingError):
            RouterConfig(watermark="psychic")
        with pytest.raises(ServingError):
            RouterConfig(watermark="projected", degrade_ttft_s=0.1,
                         upgrade_ttft_s=0.5)

    def test_no_pressure_before_any_measured_step(self):
        # EMA step time starts at 0, so the projection reads 0 seconds
        # regardless of backlog — but 0 <= upgrade mark trips an upgrade
        # only when there is a level to climb back to, so nothing happens.
        router = self.make()
        assert router.observe(0.0, queue_depth=50, running=4) is None
        assert router.level == 0

    def test_degrades_when_projection_crosses_mark(self):
        router = self.make()
        router.note_step(0.1)  # EMA = 100ms/step
        assert router.observe(0.0, queue_depth=2, running=2) is None  # 0.4s
        decision = router.observe(0.1, queue_depth=4, running=2)      # 0.6s
        assert decision.action == "degrade"
        assert decision.projected_ttft_s == pytest.approx(0.6)
        assert router.variant_for(None) == "rank8"

    def test_upgrades_when_projection_drains(self):
        router = self.make()
        router.note_step(0.1)
        router.observe(0.0, 6, 0)  # 0.6s -> degrade
        assert router.level == 1
        decision = router.observe(0.1, queue_depth=1, running=0)  # 0.1s
        assert decision.action == "upgrade"
        assert router.level == 0

    def test_backlog_marks_ignored_in_projected_mode(self):
        """A deep backlog of fast steps projects under the mark: no change
        (the integer marks would have degraded long ago)."""
        router = self.make(degrade_at=2)
        router.note_step(0.01)  # 10ms/step
        assert router.observe(0.0, queue_depth=20, running=4) is None  # 0.24s
        assert router.level == 0

    def test_snapshot_carries_watermark_config(self):
        snap = self.make().snapshot()
        assert snap["config"]["watermark"] == "projected"
        assert snap["config"]["degrade_ttft_s"] == 0.5
        assert snap["config"]["upgrade_ttft_s"] == 0.1


class TestScriptedRouter:
    def test_replays_levels(self):
        router = ScriptedRouter(QUALITY_LADDER, [0, 0, 2, 2, 1])
        seen = []
        for _ in range(6):
            router.observe(0.0, 0, 0)
            seen.append(router.level)
        assert seen == [0, 0, 2, 2, 1, 1]
        assert router.downgrades == 1
        assert router.upgrades == 1

    def test_rejects_out_of_range_levels(self):
        with pytest.raises(ServingError):
            ScriptedRouter(QUALITY_LADDER, [3])


class TestGoodputSummary:
    CATALOG = {
        "gold": QoSClass("gold", quality_floor="dense", ttft_slo_s=1.0),
        "batch": QoSClass("batch", quality_floor="rank1", ttft_slo_s=9.0),
    }

    def record(self, **overrides):
        base = dict(
            qos="gold",
            state="finished",
            ttft_s=0.5,
            slo_met=True,
            variants=["dense"],
        )
        base.update(overrides)
        return base

    def test_counts_good_and_violations(self):
        records = [
            self.record(),
            self.record(slo_met=False, ttft_s=2.0),
            self.record(variants=["dense", "rank8"]),  # floor violation
            self.record(qos="batch", variants=["rank1"]),
            self.record(state="cancelled", slo_met=False),
        ]
        summary = goodput_summary(records, self.CATALOG)
        assert summary.eligible == 5
        assert summary.good == 2
        assert summary.slo_violations == 1
        assert summary.quality_violations == 1
        assert summary.not_finished == 1
        assert summary.rate == pytest.approx(2 / 5)

    def test_untagged_records_held_only_to_finishing(self):
        finished = self.record(qos=None, slo_met=None, variants=["rank1"])
        cancelled = self.record(qos=None, state="cancelled")
        summary = goodput_summary([finished, cancelled], self.CATALOG)
        assert summary.eligible == 2
        assert summary.good == 1
        assert summary.per_class["untagged"]["eligible"] == 2

    def test_unknown_tag_raises(self):
        with pytest.raises(ServingError):
            goodput_summary([self.record(qos="platinum")], self.CATALOG)

    def test_default_spec_fills_missing_variants(self):
        record = self.record()
        record.pop("variants")
        summary = goodput_summary([record], self.CATALOG, default_spec="rank1")
        assert summary.quality_violations == 1

    def test_per_class_breakdown(self):
        records = [self.record(), self.record(qos="batch", variants=["rank1"])]
        summary = goodput_summary(records, self.CATALOG)
        assert summary.per_class["gold"]["good"] == 1
        assert summary.per_class["batch"]["eligible"] == 1


class TestCalibration:
    def test_positive_unit(self, smoke_model):
        trace = make_trace("poisson", 2, 10.0, 128, seed=0)
        unit = calibrate_unit(smoke_model, trace, engine_config())
        assert unit > 0.0

    def test_empty_trace_raises(self, smoke_model):
        with pytest.raises(ServingError):
            calibrate_unit(smoke_model, [], engine_config())


class TestRoutedEngineConstruction:
    def test_router_requires_variants(self):
        with pytest.raises(ServingError):
            InferenceEngine(None, engine_config(), router=RankRouter())

    def test_variants_require_router(self, smoke_model):
        with pytest.raises(ServingError):
            InferenceEngine(
                smoke_model, engine_config(), variants={"dense": smoke_model}
            )

    def test_missing_ladder_spec_raises(self, smoke_model):
        with pytest.raises(ServingError):
            InferenceEngine(
                None,
                engine_config(),
                router=RankRouter(),
                variants={"dense": smoke_model},
            )

    def test_unresolved_slo_rejected_at_submit(self, smoke_model):
        engine = InferenceEngine(smoke_model, engine_config())
        unresolved = QoSClass("gold", quality_floor=None, ttft_slo_units=5.0)
        with pytest.raises(ServingError):
            engine.submit(np.arange(4), 2, qos=unresolved)

    def test_off_ladder_floor_rejected_at_submit(self, smoke_model):
        registry = VariantRegistry(smoke_model, share_base=True)
        engine = InferenceEngine(
            None,
            engine_config(),
            router=RankRouter(("dense", "rank1")),
            variants=registry.ladder(("dense", "rank1")),
        )
        bad = QoSClass("gold", quality_floor="rank8", ttft_slo_s=1.0)
        with pytest.raises(ServingError):
            engine.submit(np.arange(4), 2, qos=bad)


def metered_ladder(registry, timer):
    return {
        spec: MeteredModel(registry.get(spec).model, timer, VIRTUAL_COST_S[spec])
        for spec in QUALITY_LADDER
    }


def virtual_catalog():
    """Absolute SLOs sized for the virtual cost model: tight enough that a
    fixed dense replay misses them under the burst, loose enough that the
    degraded rungs can meet them."""
    return {
        "gold": QoSClass("gold", quality_floor="dense", ttft_slo_s=0.35),
        "interactive": QoSClass(
            "interactive", quality_floor="rank8", ttft_slo_s=0.25
        ),
        "batch": QoSClass("batch", quality_floor="rank1", ttft_slo_s=2.0),
    }


def virtual_trace(vocab_size=128):
    return make_trace(
        "bursty",
        24,
        120.0,
        vocab_size,
        seed=7,
        prompt_len=(6, 12),
        new_tokens=(4, 8),
        qos_mix={"gold": 0.25, "interactive": 0.35, "batch": 0.4},
    )


def replay_metered(registry, trace, catalog, router=None):
    """One deterministic replay: virtual clock, metered forwards."""
    timer = VirtualTimer()
    variants = metered_ladder(registry, timer)
    if router is None:
        raise ValueError("router required")
    engine = InferenceEngine(
        None, engine_config(), timer=timer, router=router, variants=variants
    )
    requests = replay_trace(engine, trace, catalog=catalog)
    return requests, engine


def replay_metered_fixed(registry, trace, catalog, spec):
    """A fixed-variant baseline under the same virtual cost model, scored
    against the same catalog (its served variant is ``spec`` throughout)."""
    timer = VirtualTimer()
    model = MeteredModel(registry.get(spec).model, timer, VIRTUAL_COST_S[spec])
    engine = InferenceEngine(model, engine_config(), timer=timer)
    requests = replay_trace(engine, trace, catalog=catalog)
    return requests, engine


class TestRoutedBeatsFixed:
    """The acceptance property, made deterministic by the virtual clock."""

    @pytest.fixture(scope="class")
    def scores(self, smoke_model):
        registry = VariantRegistry(smoke_model, share_base=True)
        trace = virtual_trace()
        catalog = virtual_catalog()
        # upgrade_at=2: inter-burst gaps drain the backlog to the last
        # couple of running requests, which is what the upgrade should
        # trigger on under the virtual cost model.
        router = RankRouter(
            QUALITY_LADDER, RouterConfig(degrade_at=5, upgrade_at=2, dwell_steps=3)
        )
        routed_requests, routed_engine = replay_metered(
            registry, trace, catalog, router=router
        )
        routed = goodput_summary(
            request_records(routed_requests), catalog, QUALITY_LADDER
        )
        fixed = {}
        for spec in QUALITY_LADDER:
            requests, _ = replay_metered_fixed(registry, trace, catalog, spec)
            fixed[spec] = goodput_summary(
                request_records(requests),
                catalog,
                QUALITY_LADDER,
                default_spec=spec,
            )
        return routed, fixed, router, routed_engine

    def test_routed_beats_every_fixed_variant(self, scores):
        routed, fixed, _, _ = scores
        for spec, summary in fixed.items():
            assert routed.rate > summary.rate, (
                f"routed {routed.rate:.3f} does not beat fixed {spec} "
                f"{summary.rate:.3f}"
            )

    def test_router_downgraded_and_upgraded(self, scores):
        _, _, router, _ = scores
        assert router.downgrades >= 1
        assert router.upgrades >= 1

    def test_floors_never_violated(self, scores):
        routed, _, _, _ = scores
        assert routed.quality_violations == 0

    def test_swaps_recorded_in_metrics(self, scores):
        _, _, _, engine = scores
        assert engine.metrics.variant_swaps >= 1
        assert engine.metrics.qos_classes  # per-class breakdown populated

    def test_fixed_cheap_variants_forfeit_floors(self, scores):
        _, fixed, _, _ = scores
        assert fixed["rank8"].quality_violations > 0
        assert fixed["rank1"].quality_violations > fixed["rank8"].quality_violations

    def test_fixed_dense_misses_slos_under_burst(self, scores):
        _, fixed, _, _ = scores
        assert fixed["dense"].slo_violations > 0


class TestDenseDegeneracy:
    """A single dense-floor class pins every request to the ladder's best
    variant: the routed engine must be token-for-token the dense engine."""

    def test_tokens_identical_to_dense_baseline(self, smoke_model):
        trace = make_trace(
            "bursty",
            12,
            150.0,
            128,
            seed=3,
            prompt_len=(6, 12),
            new_tokens=(4, 8),
            qos_mix={"gold": 1.0},
        )
        catalog = {"gold": QoSClass("gold", quality_floor="dense", ttft_slo_s=5.0)}
        registry = VariantRegistry(smoke_model, share_base=True)
        router = RankRouter(QUALITY_LADDER, RouterConfig())
        routed_engine = InferenceEngine(
            None,
            engine_config(),
            router=router,
            variants=registry.ladder(QUALITY_LADDER),
        )
        routed = replay_trace(routed_engine, trace, catalog=catalog)
        dense_engine = InferenceEngine(smoke_model, engine_config())
        dense = replay_trace(dense_engine, trace, catalog=catalog)
        for routed_request, dense_request in zip(routed, dense):
            assert routed_request.served_variants == ["dense"]
            np.testing.assert_array_equal(
                np.asarray(routed_request.generated),
                np.asarray(dense_request.generated),
            )
