"""The block-based KV-cache pool and its per-request views."""

import numpy as np
import pytest

from repro.errors import PoolExhaustedError, ServingError, ShapeError
from repro.nn import LayerKVCache
from repro.serving import KVBlockPool


@pytest.fixture()
def pool(smoke_config):
    return KVBlockPool(smoke_config, n_blocks=8, block_tokens=4)


class TestAccounting:
    def test_starts_empty(self, pool):
        assert pool.available_blocks == 8
        assert pool.used_blocks == 0
        assert pool.utilization == 0.0

    def test_blocks_for_tokens_rounds_up(self, pool):
        assert pool.blocks_for_tokens(0) == 0
        assert pool.blocks_for_tokens(1) == 1
        assert pool.blocks_for_tokens(4) == 1
        assert pool.blocks_for_tokens(5) == 2

    def test_fits(self, pool):
        assert pool.fits(32)
        assert not pool.fits(33)

    def test_bytes_allocated_matches_shape(self, pool, smoke_config):
        per_side = (
            smoke_config.n_layers
            * 8
            * smoke_config.kv_heads
            * 4
            * smoke_config.head_dim
            * 4  # float32
        )
        assert pool.bytes_allocated == 2 * per_side

    def test_allocation_moves_accounting(self, pool):
        blocks = pool.allocate(3)
        assert len(blocks) == 3
        assert pool.used_blocks == 3
        pool.release(blocks)
        assert pool.used_blocks == 0

    def test_exhaustion_raises_and_allocates_nothing(self, pool):
        pool.allocate(7)
        with pytest.raises(PoolExhaustedError):
            pool.allocate(2)
        assert pool.available_blocks == 1

    def test_double_release_detected(self, pool):
        blocks = pool.allocate(2)
        pool.release(blocks)
        with pytest.raises(ServingError):
            pool.release(blocks)

    def test_release_validates_ids(self, pool):
        with pytest.raises(ServingError):
            pool.release([99])


class TestPooledSequenceCache:
    def test_reserve_then_append(self, pool, smoke_config):
        cache = pool.allocate_sequence()
        cache.reserve(6)
        assert cache.capacity == 8  # two blocks of four
        assert pool.used_blocks == 2
        assert cache.seq_len == 0

    def test_append_without_reserve_raises(self, pool, smoke_config):
        cache = pool.allocate_sequence()
        kv = np.zeros((1, smoke_config.kv_heads, 2, smoke_config.head_dim))
        with pytest.raises(PoolExhaustedError):
            cache.layers[0].append(kv, kv)

    def test_append_shape_validation(self, pool, smoke_config):
        cache = pool.allocate_sequence()
        cache.reserve(4)
        bad = np.zeros((2, smoke_config.kv_heads, 2, smoke_config.head_dim))
        with pytest.raises(ShapeError):
            cache.layers[0].append(bad, bad)

    def test_free_returns_blocks_and_closes(self, pool, smoke_config):
        cache = pool.allocate_sequence()
        cache.reserve(10)
        cache.free()
        assert pool.used_blocks == 0
        assert cache.closed
        with pytest.raises(ServingError):
            cache.reserve(1)
        cache.free()  # idempotent

    def test_reserve_failure_allocates_nothing(self, pool):
        hog = pool.allocate_sequence()
        hog.reserve(28)  # 7 blocks
        cache = pool.allocate_sequence()
        with pytest.raises(PoolExhaustedError):
            cache.reserve(8)  # needs 2, only 1 free
        assert pool.available_blocks == 1
        assert cache.capacity == 0

    def test_matches_contiguous_layer_cache(self, pool, smoke_config, rng):
        """Blocked storage must gather to exactly what LayerKVCache returns."""
        cache = pool.allocate_sequence()
        reference = LayerKVCache()
        total = 0
        for chunk in (3, 1, 5, 4, 1):
            keys = rng.normal(
                size=(1, smoke_config.kv_heads, chunk, smoke_config.head_dim)
            ).astype(np.float32)
            values = rng.normal(size=keys.shape).astype(np.float32)
            cache.reserve(chunk)
            pooled_k, pooled_v = cache.layers[0].append(keys, values)
            ref_k, ref_v = reference.append(keys, values)
            total += chunk
            assert cache.layers[0].seq_len == total
            assert cache.seq_len == total
            np.testing.assert_array_equal(pooled_k, ref_k)
            np.testing.assert_array_equal(pooled_v, ref_v)

    def test_layers_are_independent(self, pool, smoke_config):
        cache = pool.allocate_sequence()
        cache.reserve(2)
        kv = np.ones((1, smoke_config.kv_heads, 2, smoke_config.head_dim))
        cache.layers[0].append(kv, kv)
        assert cache.layers[0].seq_len == 2
        assert cache.layers[1].seq_len == 0
