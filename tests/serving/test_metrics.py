"""Latency statistics and throughput accounting."""

import pytest

from repro.serving import EngineMetrics, SampleStats


class TestSampleStats:
    def test_empty_is_zero(self):
        stats = SampleStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.p50 == 0.0
        assert stats.maximum == 0.0

    def test_percentiles_nearest_rank(self):
        stats = SampleStats()
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            stats.add(value)
        assert stats.p50 == 3.0
        assert stats.p95 == 5.0
        assert stats.percentile(0.0) == 1.0
        assert stats.mean == pytest.approx(3.0)
        assert stats.maximum == 5.0

    def test_percentile_validates_range(self):
        stats = SampleStats()
        stats.add(1.0)
        with pytest.raises(ValueError):
            stats.percentile(101.0)


class TestEngineMetrics:
    def test_step_classification(self):
        metrics = EngineMetrics()
        metrics.record_step(0.1, decode_rows=4, prefill_rows=0, prefill_tokens=0)
        metrics.record_step(0.2, decode_rows=0, prefill_rows=2, prefill_tokens=20)
        metrics.record_step(0.3, decode_rows=1, prefill_rows=1, prefill_tokens=8)
        assert metrics.steps == 3
        assert metrics.decode_steps == 1
        assert metrics.prefill_steps == 1
        assert metrics.mixed_steps == 1
        assert metrics.peak_batch == 4

    def test_decode_throughput_uses_pure_decode_steps_only(self):
        metrics = EngineMetrics()
        metrics.record_step(0.5, decode_rows=10, prefill_rows=0, prefill_tokens=0)
        # A slow mixed step must not dilute decode throughput.
        metrics.record_step(5.0, decode_rows=1, prefill_rows=3, prefill_tokens=60)
        assert metrics.decode_tokens_per_s == pytest.approx(20.0)
        assert metrics.mean_decode_batch == pytest.approx(10.0)

    def test_overall_throughput_counts_everything(self):
        metrics = EngineMetrics()
        metrics.record_step(1.0, decode_rows=5, prefill_rows=1, prefill_tokens=15)
        assert metrics.overall_tokens_per_s == pytest.approx(20.0)

    def test_empty_metrics_safe(self):
        metrics = EngineMetrics()
        assert metrics.decode_tokens_per_s == 0.0
        assert metrics.overall_tokens_per_s == 0.0
        assert metrics.mean_decode_batch == 0.0
        assert "finished=0" in metrics.summary()
