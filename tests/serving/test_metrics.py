"""Latency statistics and throughput accounting."""

import pytest

from repro.serving import EngineMetrics, SampleStats


class TestSampleStats:
    def test_empty_is_zero(self):
        stats = SampleStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.p50 == 0.0
        assert stats.maximum == 0.0

    def test_percentiles_nearest_rank(self):
        stats = SampleStats()
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            stats.add(value)
        assert stats.p50 == 3.0
        assert stats.p95 == 5.0
        assert stats.percentile(0.0) == 1.0
        assert stats.mean == pytest.approx(3.0)
        assert stats.maximum == 5.0

    def test_percentile_validates_range(self):
        stats = SampleStats()
        stats.add(1.0)
        with pytest.raises(ValueError):
            stats.percentile(101.0)
        with pytest.raises(ValueError):
            stats.percentile(-0.5)

    def test_empty_percentile_skips_range_check(self):
        # Documented behaviour: with no samples every quantile is 0.0,
        # even a nonsensical one — the empty check short-circuits.
        assert SampleStats().percentile(400.0) == 0.0

    def test_single_sample_answers_every_quantile(self):
        stats = SampleStats()
        stats.add(7.25)
        for q in (0.0, 1.0, 50.0, 95.0, 99.9, 100.0):
            assert stats.percentile(q) == 7.25
        assert stats.mean == 7.25
        assert stats.maximum == 7.25

    def test_extreme_quantiles_hit_min_and_max(self):
        stats = SampleStats()
        for value in (9.0, 1.0, 5.0, 3.0, 7.0):
            stats.add(value)
        assert stats.percentile(0.0) == 1.0
        assert stats.percentile(100.0) == 9.0

    def test_nearest_rank_ties_and_unsorted_input(self):
        # Duplicate values straddling the median rank: nearest-rank picks
        # the element at round(q/100 * (n-1)) of the SORTED samples.
        stats = SampleStats()
        for value in (4.0, 2.0, 2.0, 4.0):
            stats.add(value)
        assert stats.p50 == pytest.approx(4.0)   # rank round(1.5) = 2
        assert stats.percentile(25.0) == 2.0
        assert stats.percentile(75.0) == 4.0

    def test_snapshot_round_trip(self):
        stats = SampleStats()
        for value in (0.5, 0.1, 0.9):
            stats.add(value)
        restored = SampleStats.from_snapshot(stats.snapshot())
        assert restored.count == stats.count
        assert restored.mean == stats.mean
        for q in (0.0, 50.0, 95.0, 100.0):
            assert restored.percentile(q) == stats.percentile(q)

    def test_snapshot_summary_fields(self):
        stats = SampleStats()
        stats.add(2.0)
        stats.add(4.0)
        payload = stats.snapshot()
        assert payload["count"] == 2
        assert payload["mean"] == pytest.approx(3.0)
        assert payload["max"] == 4.0
        assert payload["samples"] == [2.0, 4.0]


class TestEngineMetrics:
    def test_step_classification(self):
        metrics = EngineMetrics()
        metrics.record_step(0.1, decode_rows=4, prefill_rows=0, prefill_tokens=0)
        metrics.record_step(0.2, decode_rows=0, prefill_rows=2, prefill_tokens=20)
        metrics.record_step(0.3, decode_rows=1, prefill_rows=1, prefill_tokens=8)
        assert metrics.steps == 3
        assert metrics.decode_steps == 1
        assert metrics.prefill_steps == 1
        assert metrics.mixed_steps == 1
        assert metrics.peak_batch == 4

    def test_decode_throughput_uses_pure_decode_steps_only(self):
        metrics = EngineMetrics()
        metrics.record_step(0.5, decode_rows=10, prefill_rows=0, prefill_tokens=0)
        # A slow mixed step must not dilute decode throughput.
        metrics.record_step(5.0, decode_rows=1, prefill_rows=3, prefill_tokens=60)
        assert metrics.decode_tokens_per_s == pytest.approx(20.0)
        assert metrics.mean_decode_batch == pytest.approx(10.0)

    def test_overall_throughput_counts_everything(self):
        metrics = EngineMetrics()
        metrics.record_step(1.0, decode_rows=5, prefill_rows=1, prefill_tokens=15)
        assert metrics.overall_tokens_per_s == pytest.approx(20.0)

    def test_empty_metrics_safe(self):
        metrics = EngineMetrics()
        assert metrics.decode_tokens_per_s == 0.0
        assert metrics.overall_tokens_per_s == 0.0
        assert metrics.mean_decode_batch == 0.0
        assert "finished=0" in metrics.summary()

    def test_snapshot_round_trip(self):
        metrics = EngineMetrics()
        metrics.record_step(0.5, decode_rows=10, prefill_rows=0, prefill_tokens=0)
        metrics.record_step(0.2, decode_rows=0, prefill_rows=2, prefill_tokens=20)
        metrics.record_step(0.3, decode_rows=1, prefill_rows=1, prefill_tokens=8)
        metrics.preemptions = 2
        metrics.finished = 3
        metrics.ttft_s.add(0.05)
        metrics.ttft_s.add(0.15)
        metrics.e2e_s.add(1.25)

        payload = metrics.snapshot()
        restored = EngineMetrics.from_snapshot(payload)

        for name in EngineMetrics._COUNTER_FIELDS:
            assert getattr(restored, name) == getattr(metrics, name), name
        assert restored.ttft_s.count == 2
        assert restored.ttft_s.p95 == metrics.ttft_s.p95
        assert restored.e2e_s.mean == metrics.e2e_s.mean
        assert restored.decode_tokens_per_s == metrics.decode_tokens_per_s
        assert restored.overall_tokens_per_s == metrics.overall_tokens_per_s
        assert restored.summary() == metrics.summary()

    def test_snapshot_is_json_serializable(self):
        import json

        metrics = EngineMetrics()
        metrics.record_step(0.1, decode_rows=2, prefill_rows=1, prefill_tokens=4)
        metrics.queue_wait_s.add(0.01)
        text = json.dumps(metrics.snapshot())
        assert "decode_tokens_per_s" in text


class TestSpeculativeMetrics:
    def test_acceptance_rate_pinned_values(self):
        metrics = EngineMetrics()
        assert metrics.spec_acceptance_rate == 0.0  # nothing drafted yet

        # All accepted over three K=4 cycles: exactly 1.0.
        metrics.spec_steps, metrics.spec_drafted, metrics.spec_accepted = 3, 12, 12
        assert metrics.spec_acceptance_rate == 1.0

        # All rejected: exactly 0.0 (corrections never count as drafts).
        metrics.spec_accepted = 0
        assert metrics.spec_acceptance_rate == 0.0

        # K=1 half right.
        metrics.spec_drafted, metrics.spec_accepted = 2, 1
        assert metrics.spec_acceptance_rate == pytest.approx(0.5)

    def test_record_step_decode_tokens_override(self):
        """Speculative steps commit more than one token per decode row; the
        override feeds both the overall and pure-decode token counters."""
        metrics = EngineMetrics()
        metrics.record_step(0.5, decode_rows=2, prefill_rows=0,
                            prefill_tokens=0, decode_tokens=7)
        assert metrics.decode_tokens == 7
        assert metrics.pure_decode_tokens == 7
        assert metrics.decode_tokens_per_s == pytest.approx(14.0)
        # Default (no override) stays one token per row.
        metrics.record_step(0.5, decode_rows=3, prefill_rows=0, prefill_tokens=0)
        assert metrics.decode_tokens == 10

    def test_spec_counters_round_trip(self):
        metrics = EngineMetrics()
        metrics.record_step(0.2, decode_rows=2, prefill_rows=0,
                            prefill_tokens=0, decode_tokens=5)
        metrics.spec_steps = 2
        metrics.spec_drafted = 8
        metrics.spec_accepted = 3
        metrics.spec_fallbacks = 1

        restored = EngineMetrics.from_snapshot(metrics.snapshot())
        assert restored.spec_steps == 2
        assert restored.spec_drafted == 8
        assert restored.spec_accepted == 3
        assert restored.spec_fallbacks == 1
        assert restored.spec_acceptance_rate == pytest.approx(3 / 8)
        assert restored.summary() == metrics.summary()

    def test_snapshot_includes_acceptance_rate(self):
        metrics = EngineMetrics()
        metrics.spec_drafted, metrics.spec_accepted = 4, 3
        assert metrics.snapshot()["spec_acceptance_rate"] == pytest.approx(0.75)

    def test_pre_speculation_snapshot_still_loads(self):
        """BENCH JSON written before the spec counters existed must load
        with the counters at their defaults."""
        metrics = EngineMetrics()
        metrics.record_step(0.1, decode_rows=1, prefill_rows=0, prefill_tokens=0)
        payload = metrics.snapshot()
        for name in ("spec_steps", "spec_drafted", "spec_accepted",
                     "spec_fallbacks", "spec_acceptance_rate"):
            del payload[name]
        restored = EngineMetrics.from_snapshot(payload)
        assert restored.spec_drafted == 0
        assert restored.spec_acceptance_rate == 0.0
        assert "spec accept" not in restored.summary()

    def test_summary_gains_spec_section_only_when_speculating(self):
        metrics = EngineMetrics()
        assert "spec accept" not in metrics.summary()
        metrics.spec_steps, metrics.spec_drafted, metrics.spec_accepted = 1, 4, 4
        metrics.spec_fallbacks = 2
        summary = metrics.summary()
        assert "spec accept=1.00 (4/4, fallbacks=2)" in summary


class TestQoSClassMetrics:
    def make_request(self, state, qos_name="gold", ttft=0.1, slo=0.5,
                     finish_reason=None):
        from repro.serving import GenerationRequest, RequestState
        import numpy as np

        request = GenerationRequest(
            request_id=0,
            prompt=np.arange(4),
            max_new_tokens=2,
            qos_name=qos_name,
            ttft_slo_s=slo,
        )
        request.state = RequestState[state.upper()]
        request.finish_reason = finish_reason
        if state == "finished":
            request.first_token_time = ttft
            request.finish_time = ttft + 0.05
        return request

    def test_per_class_breakdown(self):
        metrics = EngineMetrics()
        metrics.record_terminal(self.make_request("finished", ttft=0.1))
        metrics.record_terminal(self.make_request("finished", ttft=0.9))
        metrics.record_terminal(
            self.make_request("cancelled", finish_reason="deadline")
        )
        metrics.record_terminal(
            self.make_request("cancelled", qos_name="batch", finish_reason="user")
        )
        metrics.record_terminal(self.make_request("finished", qos_name=None))
        gold = metrics.qos_classes["gold"]
        assert gold.finished == 2
        assert gold.slo_met == 1
        assert gold.slo_missed == 1
        assert gold.cancelled == 1
        assert gold.deadline_missed == 1
        batch = metrics.qos_classes["batch"]
        assert batch.cancelled == 1
        assert batch.deadline_missed == 0
        # Untagged requests never open a class bucket.
        assert set(metrics.qos_classes) == {"gold", "batch"}

    def test_requests_without_slo_score_neither(self):
        metrics = EngineMetrics()
        metrics.record_terminal(self.make_request("finished", slo=None))
        gold = metrics.qos_classes["gold"]
        assert gold.finished == 1
        assert gold.slo_met == 0 and gold.slo_missed == 0

    def test_snapshot_round_trip(self):
        metrics = EngineMetrics()
        metrics.variant_swaps = 3
        metrics.record_terminal(self.make_request("finished", ttft=0.1))
        metrics.record_terminal(
            self.make_request("cancelled", finish_reason="deadline")
        )
        restored = EngineMetrics.from_snapshot(metrics.snapshot())
        assert restored.variant_swaps == 3
        gold = restored.qos_classes["gold"]
        assert gold.finished == 1
        assert gold.deadline_missed == 1
        assert gold.ttft_s.p50 == pytest.approx(0.1)
        assert restored.summary() == metrics.summary()

    def test_pre_qos_snapshot_still_loads(self):
        """Run summaries written before the QoS subsystem existed must load
        with swaps at zero and no class buckets."""
        metrics = EngineMetrics()
        metrics.record_step(0.1, decode_rows=1, prefill_rows=0, prefill_tokens=0)
        payload = metrics.snapshot()
        payload.pop("variant_swaps", None)
        payload.pop("qos_classes", None)
        restored = EngineMetrics.from_snapshot(payload)
        assert restored.variant_swaps == 0
        assert restored.qos_classes == {}
        assert "qos[" not in restored.summary()

    def test_snapshot_omits_empty_qos_section(self):
        assert "qos_classes" not in EngineMetrics().snapshot()

    def test_summary_gains_qos_section(self):
        metrics = EngineMetrics()
        metrics.variant_swaps = 2
        metrics.record_terminal(self.make_request("finished", ttft=0.1))
        assert "qos[" in metrics.summary()
        assert "swaps=2" in metrics.summary()

    def test_partial_class_snapshot_defaults(self):
        from repro.serving import QoSClassMetrics

        restored = QoSClassMetrics.from_snapshot({"finished": 4})
        assert restored.finished == 4
        assert restored.deadline_missed == 0
        assert restored.ttft_s.count == 0
