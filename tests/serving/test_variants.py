"""Variant spec parsing and the lazy variant registry."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import VariantRegistry, parse_variant_spec


class TestParseVariantSpec:
    def test_dense_is_identity(self, smoke_config):
        assert parse_variant_spec("dense", smoke_config).is_identity

    def test_pr_spec_scales_table4(self, smoke_config):
        config = parse_variant_spec("pr33", smoke_config)
        assert not config.is_identity
        assert config.rank == 1
        assert config.roles == smoke_config.tensor_roles
        assert all(0 <= layer < smoke_config.n_layers for layer in config.layers)

    def test_rank_spec_covers_all_layers(self, smoke_config):
        config = parse_variant_spec("rank2", smoke_config)
        assert config.layers == tuple(range(smoke_config.n_layers))
        assert config.rank == 2

    def test_spec_is_case_and_space_insensitive(self, smoke_config):
        assert parse_variant_spec(" Dense ", smoke_config).is_identity

    def test_unknown_spec_rejected(self, smoke_config):
        with pytest.raises(ServingError):
            parse_variant_spec("turbo", smoke_config)

    def test_unknown_pr_target_rejected(self, smoke_config):
        with pytest.raises(ServingError):
            parse_variant_spec("pr37", smoke_config)


class TestVariantRegistry:
    def test_dense_variant_shares_weights_not_identity(self, smoke_model):
        registry = VariantRegistry(smoke_model)
        variant = registry.get("dense")
        assert variant.model is not smoke_model
        assert variant.report is None
        assert variant.parameter_reduction == 0.0
        base = smoke_model.state_dict()
        copy = variant.model.state_dict()
        for key in base:
            np.testing.assert_array_equal(base[key], copy[key])

    def test_decomposed_variant_reduces_parameters(self, smoke_model):
        registry = VariantRegistry(smoke_model)
        variant = registry.get("pr33")
        assert variant.report is not None
        assert variant.parameter_reduction > 0.0
        assert variant.model.num_parameters() < smoke_model.num_parameters()
        # The base model must be untouched by the surgery.
        assert smoke_model.num_parameters() == registry.get("dense").model.num_parameters()

    def test_variants_cached_by_spec(self, smoke_model):
        registry = VariantRegistry(smoke_model)
        assert registry.get("pr33") is registry.get(" PR33 ")
        assert registry.specs() == ["pr33"]

    def test_describe_mentions_spec(self, smoke_model):
        registry = VariantRegistry(smoke_model)
        assert "dense" in registry.get("dense").describe()
        assert "decomposed" in registry.get("rank1").describe()


class TestSharedBaseRegistry:
    def test_dense_variant_aliases_base_arrays(self, smoke_model):
        registry = VariantRegistry(smoke_model, share_base=True)
        variant = registry.get("dense")
        base = dict(smoke_model.named_parameters())
        for name, param in variant.model.named_parameters():
            assert np.shares_memory(param.data, base[name].data), name
        assert variant.shares_base is True
        assert variant.private_bytes == 0
        assert variant.total_bytes > 0

    def test_decomposed_factors_are_private(self, smoke_model):
        registry = VariantRegistry(smoke_model, share_base=True)
        variant = registry.get("rank8")
        base_ids = {
            id(p.data) for _, p in smoke_model.named_parameters()
        }
        private = [
            name
            for name, p in variant.model.named_parameters()
            if id(p.data) not in base_ids
        ]
        assert private, "decomposition must introduce private factor arrays"
        assert 0 < variant.private_bytes < variant.total_bytes

    def test_ladder_materializes_all_specs(self, smoke_model):
        registry = VariantRegistry(smoke_model, share_base=True)
        ladder = registry.ladder(("dense", "rank8", "rank1"))
        assert set(ladder) == {"dense", "rank8", "rank1"}
        assert ladder["dense"] is registry.get("dense").model

    def test_shared_base_variants_stay_logit_identical_to_copies(self, smoke_model):
        """Aliasing is an optimization: decomposition on a shared-base
        variant must give the same logits as on a state_dict copy."""
        shared = VariantRegistry(smoke_model, share_base=True).get("rank1")
        copied = VariantRegistry(smoke_model, share_base=False).get("rank1")
        tokens = np.arange(6, dtype=np.int64)[None, :] % 11
        np.testing.assert_allclose(
            shared.model.forward(tokens).data,
            copied.model.forward(tokens).data,
            rtol=1e-6,
            atol=1e-7,
        )

    def test_copy_registry_reports_full_private_bytes(self, smoke_model):
        variant = VariantRegistry(smoke_model, share_base=False).get("dense")
        assert variant.shares_base is False
        assert variant.private_bytes == variant.total_bytes


class TestQuantizedSpecs:
    def test_int_suffix_parses_recursively(self, smoke_config):
        config = parse_variant_spec("rank2-int8", smoke_config)
        assert config.rank == 2 and config.bits == 8
        assert config.layers == tuple(range(smoke_config.n_layers))

    def test_dense_int_is_identity_with_bits(self, smoke_config):
        config = parse_variant_spec("dense-int4", smoke_config)
        assert config.is_identity and config.bits == 4

    def test_unsupported_width_rejected(self, smoke_config):
        with pytest.raises(ServingError, match="quantized variant"):
            parse_variant_spec("dense-int7", smoke_config)

    def test_unknown_base_rejected(self, smoke_config):
        with pytest.raises(ServingError):
            parse_variant_spec("turbo-int8", smoke_config)

    def test_quantized_variant_materializes_real_storage(self, smoke_model):
        registry = VariantRegistry(smoke_model)
        variant = registry.get("dense-int8")
        assert variant.bits == 8
        assert variant.quant is not None
        assert variant.quant.memory_reduction_x > 3.0
        assert "int8" in variant.describe()

    def test_quantized_chain_compounds_both_reductions(self, smoke_model):
        registry = VariantRegistry(smoke_model)
        variant = registry.get("rank1-int8")
        assert variant.parameter_reduction > 0.0
        assert variant.quant is not None and variant.quant.bits == 8

    def test_base_model_untouched_by_quantized_variant(self, smoke_model):
        before = {
            name: param.data.copy()
            for name, param in smoke_model.named_parameters()
        }
        VariantRegistry(smoke_model).get("dense-int8")
        for name, param in smoke_model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])
