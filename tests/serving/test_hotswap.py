"""Mid-decode variant hot-swap exactness.

The contract: a request swapped between ladder variants mid-decode produces
exactly the tokens of a fresh run that applies the same per-step variant
schedule — KV caches are variant-agnostic token state, so a swap is a pure
weights switch with no recomputation.  A :class:`ScriptedRouter` pins the
swap points, making the schedule (recorded in ``variant_history``)
deterministic; the reference replays it position by position with
``forward_cached`` on the unsharded models.  The matrix covers
{tp1, tp2} x {plain, speculative} x {paged, unshared} engines.
"""

import numpy as np
import pytest

from repro.serving import (
    QUALITY_LADDER,
    EngineConfig,
    InferenceEngine,
    RequestState,
    ScriptedRouter,
    VariantRegistry,
)


@pytest.fixture(scope="module")
def registry(smoke_model):
    return VariantRegistry(smoke_model, share_base=True)


def engine_config(paged: bool, **overrides):
    defaults = dict(
        max_batch=4,
        token_budget=48,
        n_blocks=64,
        block_tokens=8,
        prefix_sharing=paged,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def make_engine(registry, levels, tp=1, paged=True, speculative=False):
    """A routed engine whose level schedule is fully scripted."""
    router = ScriptedRouter(QUALITY_LADDER, levels)
    facades = []
    if tp > 1:
        from repro.parallel import ShardedLlama

        variants = {}
        for spec in QUALITY_LADDER:
            facade = ShardedLlama(registry.get(spec).model, tp)
            facades.append(facade)
            variants[spec] = facade
    else:
        variants = registry.ladder(QUALITY_LADDER)
    drafter = registry.get("rank1").model if speculative else None
    engine = InferenceEngine(
        None,
        engine_config(paged),
        drafter=drafter,
        router=router,
        variants=variants,
    )
    return engine, facades


def scheduled_reference(registry, history, prompt, max_new_tokens, stop_token=None):
    """Greedy decode where generated position ``j`` is computed by the last
    history entry assigned at or before ``j`` — the engine's own contract
    for ``variant_history``."""

    def variant_at(j):
        spec = history[0][1]
        for count, candidate in history:
            if count <= j:
                spec = candidate
        return spec

    models = {spec: registry.get(spec).model for spec in QUALITY_LADDER}
    first = models[variant_at(0)]
    cache = first.make_cache()
    logits = first.forward_cached(np.asarray(prompt)[None, :], cache)
    token = int(np.argmax(logits.data[0, -1]))
    tokens = [token]
    for j in range(1, max_new_tokens):
        if stop_token is not None and token == stop_token:
            break
        model = models[variant_at(j)]
        logits = model.forward_cached(np.array([[token]]), cache)
        token = int(np.argmax(logits.data[0, -1]))
        tokens.append(token)
    return np.asarray(tokens[:max_new_tokens])


def run_swapped(registry, tp, paged, speculative, levels):
    engine, facades = make_engine(
        registry, levels, tp=tp, paged=paged, speculative=speculative
    )
    try:
        prompts = [
            np.array([5, 9, 2, 7, 11, 3]),
            np.array([4, 4, 8, 1, 0, 6, 2]),
            np.array([9, 1, 5]),
        ]
        requests = [
            engine.submit(prompt, max_new_tokens=10, speculative=speculative)
            for prompt in prompts
        ]
        engine.run_until_idle()
    finally:
        for facade in facades:
            facade.close()
    return requests


SWAP_LEVELS = [0, 0, 0, 1, 1, 2, 2, 1, 0]


@pytest.mark.parametrize("tp", [1, 2])
@pytest.mark.parametrize("speculative", [False, True])
@pytest.mark.parametrize("paged", [True, False])
def test_swapped_tokens_match_scheduled_reference(registry, tp, paged, speculative):
    requests = run_swapped(registry, tp, paged, speculative, SWAP_LEVELS)
    swapped = 0
    for request in requests:
        assert request.state is RequestState.FINISHED
        assert request.variant_history, "routed request must record its schedule"
        swapped += int(len(request.served_variants) > 1)
        reference = scheduled_reference(
            registry,
            request.variant_history,
            request.prompt,
            request.max_new_tokens,
            stop_token=request.stop_token,
        )
        np.testing.assert_array_equal(np.asarray(request.generated), reference)
    assert swapped >= 1, "schedule must actually swap at least one request"


def test_history_starts_at_admission_level(registry):
    requests = run_swapped(registry, 1, True, False, [2])
    for request in requests:
        count, spec = request.variant_history[0]
        assert count == 0
        assert spec == "rank1"
        assert request.swaps == 0


def test_swap_counts_match_history(registry):
    requests = run_swapped(registry, 1, True, False, SWAP_LEVELS)
    for request in requests:
        assert request.swaps == len(request.variant_history) - 1
        assert request.result().swaps == request.swaps
        assert request.result().variants == tuple(request.served_variants)


def run_watching_cache(engine, prompt, max_new_tokens):
    """Drive the engine to idle, capturing the request's live cache (it is
    released back to the pool at finish)."""
    request = engine.submit(prompt, max_new_tokens=max_new_tokens)
    cache = None
    for _ in range(1000):
        if not engine.has_work:
            break
        engine.step()
        cache = request.cache or cache
    assert request.state is RequestState.FINISHED
    return request, cache


def test_swap_freezes_sealing_on_paged_cache(registry):
    """After a mid-flight swap the cache must stop advertising its pages to
    future prefix matches — they were partly computed by another variant."""
    engine, _ = make_engine(registry, [0, 0, 2, 2, 2, 2], tp=1, paged=True)
    request, cache = run_watching_cache(
        engine, np.array([5, 9, 2, 7, 11, 3]), max_new_tokens=8
    )
    assert request.swaps >= 1
    assert cache._seal_frozen is True


def test_unswapped_request_keeps_sealing(registry):
    engine, _ = make_engine(registry, [1], tp=1, paged=True)
    request, cache = run_watching_cache(
        engine, np.array([5, 9, 2, 7, 11, 3]), max_new_tokens=8
    )
    assert request.swaps == 0
    assert cache._seal_frozen is False


def test_variant_namespaces_isolate_prefixes(registry):
    """Identical prompts admitted under different variants must not share
    pages: a page advertises 'computed by the admission variant'."""
    prompt = np.arange(16, dtype=np.int64) % 13
    # First request admitted at level 0 (dense), second at level 2 (rank1):
    # same tokens, different computing variants.
    engine, _ = make_engine(registry, [0, 0, 2, 2, 2, 2, 2, 2, 2], tp=1, paged=True)
    first = engine.submit(prompt, max_new_tokens=2)
    engine.run_until_idle()
    second = engine.submit(prompt.copy(), max_new_tokens=2)
    engine.run_until_idle()
    assert first.variant_history[0][1] == "dense"
    assert second.variant_history[0][1] == "rank1"
    store = engine.pool
    assert store.prefix_hits == 0, "cross-variant prefix reuse is forbidden"


def test_same_variant_prefixes_still_share(registry):
    prompt = np.arange(16, dtype=np.int64) % 13
    engine, _ = make_engine(registry, [0], tp=1, paged=True)
    engine.submit(prompt, max_new_tokens=2)
    engine.run_until_idle()
    engine.submit(prompt.copy(), max_new_tokens=2)
    engine.run_until_idle()
    assert engine.pool.prefix_hits >= 1
