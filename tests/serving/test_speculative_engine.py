"""Adversarial speculation in the engine: rollback under pool pressure.

The engine-level contract mirrors the session-level one: a speculative
request's tokens are identical to ``greedy_generate`` on its prompt alone,
for any interleaving — pool exhaustion mid-speculation, preemption of a
drafting request, draft-pool starvation — and both KV pools drain to empty
when the engine goes idle.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    RequestState,
    VariantRegistry,
)


@pytest.fixture(scope="module")
def drafter(smoke_model):
    return VariantRegistry(smoke_model).get("rank8").model


def spec_engine(model, drafter, **overrides):
    defaults = dict(max_batch=4, token_budget=24, n_blocks=24, block_tokens=8)
    defaults.update(overrides)
    return InferenceEngine(model, EngineConfig(**defaults), drafter=drafter)


def reference_tokens(model, request):
    return model.greedy_generate(
        request.prompt,
        max_new_tokens=request.max_new_tokens,
        stop_token=request.stop_token,
    )


def assert_all_finished_exact(engine, requests):
    for request in requests:
        assert request.state is RequestState.FINISHED, request.finish_reason
        np.testing.assert_array_equal(
            request.tokens, reference_tokens(engine.model, request)
        )


def assert_pools_drained(engine):
    assert engine.pool.used_blocks == 0
    assert engine.draft_pool.used_blocks == 0


class TestSubmission:
    def test_speculative_without_drafter_raises(self, smoke_model):
        engine = InferenceEngine(smoke_model, EngineConfig(max_batch=2, token_budget=8))
        with pytest.raises(ServingError):
            engine.submit(np.arange(4), max_new_tokens=2, speculative=True)

    def test_single_speculative_request_exact(self, smoke_model, drafter):
        engine = spec_engine(smoke_model, drafter)
        request = engine.submit(np.array([5, 9, 2, 7]), 10, speculative=True)
        engine.run_until_idle()
        assert_all_finished_exact(engine, [request])
        assert engine.metrics.spec_steps > 0
        assert engine.metrics.spec_drafted > 0
        assert_pools_drained(engine)

    def test_mixed_speculative_and_plain_rows(self, smoke_model, drafter):
        """Speculative and non-speculative rows share ragged batches."""
        engine = spec_engine(smoke_model, drafter)
        rng = np.random.default_rng(3)
        requests = []
        for i in range(6):
            prompt = rng.integers(0, 128, size=int(rng.integers(2, 10)))
            requests.append(
                engine.submit(prompt, int(rng.integers(3, 9)), speculative=i % 2 == 0)
            )
        engine.run_until_idle()
        assert_all_finished_exact(engine, requests)
        assert_pools_drained(engine)

    def test_stop_token_inside_draft_block(self, smoke_model, drafter):
        prompt = np.array([5, 9, 2, 7])
        reference = smoke_model.greedy_generate(prompt, 8)
        stop = int(reference[-1])  # stop somewhere mid-generation
        engine = spec_engine(smoke_model, drafter)
        request = engine.submit(prompt, 8, stop_token=stop, speculative=True)
        engine.run_until_idle()
        np.testing.assert_array_equal(
            request.tokens,
            smoke_model.greedy_generate(prompt, 8, stop_token=stop),
        )
        assert_pools_drained(engine)


class TestPoolPressure:
    def test_starved_draft_pool_falls_back_cleanly(self, smoke_model, drafter):
        """With a draft pool too small to ever speculate, every cycle is a
        counted fallback and output is still exact."""
        engine = spec_engine(smoke_model, drafter, spec_blocks=1)
        rng = np.random.default_rng(5)
        requests = [
            engine.submit(rng.integers(0, 128, size=6), 8, speculative=True)
            for _ in range(3)
        ]
        engine.run_until_idle()
        assert_all_finished_exact(engine, requests)
        assert engine.metrics.spec_fallbacks > 0
        assert_pools_drained(engine)

    def test_verifier_pool_exhaustion_mid_speculation(self, smoke_model, drafter):
        """A main pool tight enough to force preemption while speculative
        rows are mid-flight: rollback + re-prefill keep tokens exact."""
        engine = spec_engine(
            smoke_model, drafter,
            max_batch=3, token_budget=18, n_blocks=8, block_tokens=4,
        )
        rng = np.random.default_rng(7)
        requests = [
            engine.submit(rng.integers(0, 128, size=5), 8, speculative=True)
            for _ in range(3)
        ]
        engine.run_until_idle()
        assert engine.metrics.preemptions > 0
        assert_all_finished_exact(engine, requests)
        assert_pools_drained(engine)

    def test_cache_invariants_after_every_step(self, smoke_model, drafter):
        """At every step boundary each running decode row's verifier cache
        covers exactly prefix-1 positions and its draft cache never exceeds
        the verifier's coverage."""
        engine = spec_engine(
            smoke_model, drafter,
            max_batch=3, token_budget=18, n_blocks=10, block_tokens=4,
        )
        rng = np.random.default_rng(11)
        requests = [
            engine.submit(rng.integers(0, 128, size=int(rng.integers(3, 8))),
                          7, speculative=True)
            for _ in range(4)
        ]
        steps = 0
        while engine.has_work:
            engine.step()
            steps += 1
            assert steps < 1000
            for request in requests:
                if request.state is not RequestState.DECODE:
                    continue
                assert request.cache.seq_len == request.prefix.size - 1
                if request.draft_cache is not None:
                    assert request.draft_cache.seq_len <= request.cache.seq_len
        assert_all_finished_exact(engine, requests)
        assert_pools_drained(engine)


class TestLifecycle:
    def test_cancel_mid_speculation_frees_draft_state(self, smoke_model, drafter):
        engine = spec_engine(smoke_model, drafter)
        victim = engine.submit(np.arange(6), 12, speculative=True)
        survivor = engine.submit(np.arange(4) + 1, 6, speculative=True)
        engine.step()
        engine.step()
        assert engine.cancel(victim.request_id)
        assert victim.draft_cache is None
        engine.run_until_idle()
        assert_all_finished_exact(engine, [survivor])
        assert_pools_drained(engine)

    def test_step_report_spec_accounting(self, smoke_model, drafter):
        engine = spec_engine(smoke_model, drafter)
        request = engine.submit(np.array([3, 1, 4, 1, 5]), 9, speculative=True)
        committed = drafted = accepted = 0
        while engine.has_work:
            report = engine.step()
            committed += report.committed
            drafted += report.spec_drafted
            accepted += report.spec_accepted
        assert request.state is RequestState.FINISHED
        assert committed == request.n_generated
        assert drafted == engine.metrics.spec_drafted
        assert accepted == engine.metrics.spec_accepted
        assert 0 <= engine.metrics.spec_acceptance_rate <= 1.0

    def test_sharded_engine_speculates_exactly(self, smoke_model, drafter):
        """World size 2 end to end: TP verifier, canonical drafter."""
        from repro.parallel import ShardedLlama

        sharded = ShardedLlama(smoke_model, 2)
        try:
            engine = spec_engine(sharded, drafter)
            rng = np.random.default_rng(13)
            requests = [
                engine.submit(rng.integers(0, 128, size=6), 7, speculative=bool(i % 2))
                for i in range(4)
            ]
            engine.run_until_idle()
            for request in requests:
                assert request.state is RequestState.FINISHED
                np.testing.assert_array_equal(
                    request.tokens, reference_tokens(smoke_model, request)
                )
            assert engine.pool.used_blocks == 0
            assert engine.draft_pool.used_blocks == 0
        finally:
            sharded.close()
