"""Paged KV store invariants: refcounts, sealing, COW, eviction.

The store's safety argument rests on three invariants exercised here
directly (the engine tests cover the end-to-end identity contract):

1. every acquired reference is returned — refcounts drain to zero after
   completion, rollback, and cancellation, and ``used_blocks`` hits 0;
2. no page is ever mutated while shared — writes into sealed or
   multiply-referenced pages raise, and rollback into a shared sealed
   page *forks* a private copy instead of touching the original;
3. exhaustion throttles instead of crashing — allocation beyond free +
   reclaimable raises :class:`PoolExhaustedError` with no side effects,
   and reclaimable (sealed, unreferenced) pages are evicted LRU first.
"""

import numpy as np
import pytest

from repro.errors import PoolExhaustedError, ServingError
from repro.serving import PagedKVStore

PAGE = 4  # block_tokens used throughout


@pytest.fixture()
def store(smoke_config):
    return PagedKVStore(smoke_config, n_blocks=8, block_tokens=PAGE)


def kv_for(store, tokens):
    """Deterministic per-token KV content (token id broadcast everywhere),
    so two sequences writing the same tokens write identical bytes."""
    ids = np.asarray(tokens, dtype=np.float64).reshape(1, 1, -1, 1)
    return np.broadcast_to(
        ids, (1, store.kv_heads, len(tokens), store.head_dim)
    ).astype(store.dtype)


def fill(store, sequence, tokens):
    """Reserve, note, and append ``tokens`` across every layer."""
    sequence.reserve(len(tokens))
    sequence.note_tokens(tokens)
    kv = kv_for(store, tokens)
    for layer in sequence.layers:
        layer.append(kv, kv)


class TestAccounting:
    def test_starts_empty(self, store):
        assert store.available_blocks == 8
        assert store.used_blocks == 0
        assert store.cached_blocks == 0

    def test_refcounts_drain_to_zero_after_free(self, store):
        sequence = store.allocate_sequence()
        fill(store, sequence, list(range(10)))  # 2 full pages + 2 slots
        assert store.used_blocks == 3
        pages = list(sequence.block_table)
        sequence.free()
        assert all(store.ref(page) == 0 for page in pages)
        assert store.used_blocks == 0
        # The two full pages stay warm in the index; the partial one is free.
        assert store.cached_blocks == 2
        assert store.reclaimable_blocks == 2
        assert store.available_blocks == 8

    def test_refcounts_drain_after_rollback_then_free(self, store):
        sequence = store.allocate_sequence()
        fill(store, sequence, list(range(10)))
        sequence.truncate(3)  # back into the first (sealed) page
        pages = list(sequence.block_table)
        sequence.free()
        assert all(store.ref(page) == 0 for page in pages)
        assert store.used_blocks == 0

    def test_double_release_raises(self, store):
        (page,) = store.allocate(1)
        store.release_ref(page)
        with pytest.raises(ServingError):
            store.release_ref(page)


class TestSharing:
    def test_acquire_shares_sealed_prefix(self, store):
        tokens = list(range(9))
        first = store.allocate_sequence()
        fill(store, first, tokens)
        shared_page = first.block_table[0]
        second = store.acquire_sequence(tokens)
        # Match capped at len-1: both full pages hold 8 tokens but only
        # the first is matchable for a 9-token prompt... 8 // PAGE == 2
        # pages of cover; cap is (9-1)//4 = 2 pages.
        assert second.seq_len == 8
        assert second.block_table[:1] == [shared_page]
        assert store.ref(shared_page) == 2
        assert store.prefix_hits == 1
        assert store.shared_tokens == 8

    def test_match_capped_below_full_prompt(self, store):
        """A fully-indexed prompt still leaves >= 1 token to feed."""
        tokens = list(range(PAGE))
        first = store.allocate_sequence()
        fill(store, first, tokens)
        first.free()
        second = store.acquire_sequence(tokens)  # 4 tokens: cap = 0 pages
        assert second.seq_len == 0
        assert store.prefix_hits == 0

    def test_dedup_of_identical_concurrent_prefills(self, store):
        tokens = list(range(6))
        a = store.allocate_sequence()
        b = store.allocate_sequence()
        fill(store, a, tokens)
        fill(store, b, tokens)  # seals the same key: converges onto a's page
        assert a.block_table[0] == b.block_table[0]
        assert store.ref(a.block_table[0]) == 2
        # b's duplicate page went back to the free list.
        assert store.used_blocks == 3

    def test_warm_prefix_survives_completion(self, store):
        tokens = list(range(9))
        first = store.allocate_sequence()
        fill(store, first, tokens)
        first.free()
        second = store.acquire_sequence(tokens)
        assert second.seq_len == 8
        np.testing.assert_array_equal(
            second.layers[0]._gather()[0], kv_for(store, tokens[:8])
        )


class TestCopyOnWrite:
    def test_write_into_sealed_page_raises(self, store):
        sequence = store.allocate_sequence()
        fill(store, sequence, list(range(5)))
        # Bypass sequence.truncate (which forks/unseals) to point a layer
        # cursor into the sealed page: the write guard must fire.
        for layer in sequence.layers:
            layer.truncate(2)
        kv = kv_for(store, [7])
        with pytest.raises(ServingError, match="COW violation"):
            sequence.layers[0].append(kv, kv)

    def test_rollback_into_shared_page_forks(self, store):
        tokens = list(range(9))
        first = store.allocate_sequence()
        fill(store, first, tokens)
        original = first.block_table[0]
        second = store.acquire_sequence(tokens)
        before = store.keys[:, original].copy()
        second.truncate(2)  # cut inside a page referenced by both
        fork = second.block_table[0]
        assert fork != original, "shared page must fork, not mutate"
        assert store.cow_forks == 1
        assert store.ref(original) == 1 and store.ref(fork) == 1
        # Original bytes untouched; fork carries the surviving slots.
        np.testing.assert_array_equal(store.keys[:, original], before)
        np.testing.assert_array_equal(
            store.keys[:, fork, :, :2], store.keys[:, original, :, :2]
        )
        # The forked page is private and writable again.
        kv = kv_for(store, [99, 98])
        for layer in second.layers:
            layer.append(kv, kv)
        np.testing.assert_array_equal(store.keys[:, original], before)

    def test_rollback_into_private_sealed_page_unseals(self, store):
        sequence = store.allocate_sequence()
        fill(store, sequence, list(range(9)))
        page = sequence.block_table[0]
        assert store.is_sealed(page)
        sequence.truncate(2)
        assert not store.is_sealed(page)
        assert sequence.block_table[0] == page  # kept in place, now private
        # The chained second page (unreferenced descendant) was freed too.
        assert store.cached_blocks == 0

    def test_unseal_with_referenced_descendant_raises(self, store):
        sequence = store.allocate_sequence()
        fill(store, sequence, list(range(9)))
        with pytest.raises(ServingError, match="descendant"):
            store.unseal_page(sequence.block_table[0])


class TestEvictionAndExhaustion:
    def test_exhaustion_raises_without_side_effects(self, store):
        sequence = store.allocate_sequence()
        sequence.reserve(8 * PAGE)  # every page referenced
        with pytest.raises(PoolExhaustedError):
            store.allocate(1)
        assert store.available_blocks == 0
        assert store.used_blocks == 8

    def test_reclaimable_pages_evicted_for_allocation(self, store):
        sequence = store.allocate_sequence()
        fill(store, sequence, list(range(9)))
        sequence.free()
        assert store.reclaimable_blocks == 2
        pages = store.allocate(8)  # needs both reclaimable pages back
        assert len(pages) == 8
        assert store.evictions == 2
        assert store.cached_blocks == 0

    def test_lru_order_respects_recent_matches(self, smoke_config):
        store = PagedKVStore(smoke_config, n_blocks=2, block_tokens=PAGE)
        tokens_a = list(range(0, 5))
        tokens_b = list(range(10, 15))
        a = store.allocate_sequence()
        fill(store, a, tokens_a[:PAGE])
        a.note_tokens(tokens_a[PAGE:])
        a.free()
        b = store.allocate_sequence()
        fill(store, b, tokens_b[:PAGE])
        b.note_tokens(tokens_b[PAGE:])
        b.free()
        page_a = store.match_pages(tokens_a)[0][0]  # touch A: B becomes LRU
        store.allocate(1)
        assert store.is_sealed(page_a)
        assert store.cached_blocks == 1


class TestNoteTokens:
    def test_out_of_step_note_raises(self, store):
        sequence = store.allocate_sequence()
        sequence.reserve(2)
        kv = kv_for(store, [1, 2])
        for layer in sequence.layers:
            layer.append(kv, kv)  # appended without noting
        with pytest.raises(ServingError, match="out of step"):
            sequence.note_tokens([1, 2])

    def test_unnoted_pages_never_seal(self, store):
        sequence = store.allocate_sequence()
        sequence.reserve(2 * PAGE)
        kv = kv_for(store, list(range(2 * PAGE)))
        for layer in sequence.layers:
            layer.append(kv, kv)
        assert store.cached_blocks == 0
