"""The continuous-batching engine: scheduling, admission, and correctness.

The load-bearing property: for *any* interleaving of requests — any pool
size, token budget, arrival pattern, or preemption history — every finished
request's tokens are identical to running ``greedy_generate`` on its prompt
alone.  Continuous batching must be a pure throughput optimization.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    RequestState,
    poisson_trace,
    replay_trace,
)


def small_engine(model, **overrides):
    defaults = dict(max_batch=4, token_budget=24, n_blocks=24, block_tokens=8)
    defaults.update(overrides)
    return InferenceEngine(model, EngineConfig(**defaults))


def reference_tokens(model, request):
    return model.greedy_generate(
        request.prompt,
        max_new_tokens=request.max_new_tokens,
        stop_token=request.stop_token,
    )


class TestConfigValidation:
    def test_budget_must_cover_batch(self):
        with pytest.raises(ServingError):
            EngineConfig(max_batch=8, token_budget=4)

    def test_positive_sizes(self):
        with pytest.raises(ServingError):
            EngineConfig(max_batch=0)


class TestAdmissionControl:
    def test_context_overflow_rejected(self, smoke_model, smoke_config):
        engine = small_engine(smoke_model)
        prompt = np.arange(smoke_config.max_seq_len, dtype=np.int64) % 11
        request = engine.submit(prompt, max_new_tokens=1)
        assert request.state is RequestState.REJECTED
        assert request.finish_reason == "context-overflow"

    def test_pool_too_small_rejected(self, smoke_model):
        engine = small_engine(smoke_model, n_blocks=2, block_tokens=4)
        request = engine.submit(np.arange(8), max_new_tokens=8)
        assert request.finish_reason == "exceeds-pool"

    def test_queue_full_rejected(self, smoke_model):
        engine = small_engine(smoke_model, max_queue=1)
        first = engine.submit(np.arange(4), max_new_tokens=2)
        second = engine.submit(np.arange(4), max_new_tokens=2)
        assert first.state is RequestState.QUEUED
        assert second.finish_reason == "queue-full"

    def test_rejection_never_raises_and_is_terminal(self, smoke_model):
        engine = small_engine(smoke_model, n_blocks=2, block_tokens=4)
        request = engine.submit(np.arange(8), max_new_tokens=8)
        assert request.done
        assert not request.result().ok


class TestSingleRequest:
    def test_matches_sequential_generate(self, smoke_model):
        engine = small_engine(smoke_model)
        request = engine.submit(np.array([5, 9, 2, 7]), max_new_tokens=6)
        engine.run_until_idle()
        assert request.state is RequestState.FINISHED
        assert request.finish_reason == "max-tokens"
        np.testing.assert_array_equal(
            request.tokens, reference_tokens(smoke_model, request)
        )

    def test_stop_token_honoured(self, smoke_model):
        engine = small_engine(smoke_model)
        prompt = np.array([5, 9, 2, 7])
        reference = smoke_model.greedy_generate(prompt, 8)
        stop = int(reference[len(prompt)])  # first generated token
        request = engine.submit(prompt, max_new_tokens=8, stop_token=stop)
        engine.run_until_idle()
        assert request.finish_reason == "stop-token"
        assert request.n_generated == 1

    def test_chunked_prefill_spans_steps(self, smoke_model):
        engine = small_engine(smoke_model, max_batch=1, token_budget=4)
        request = engine.submit(np.arange(10) % 7, max_new_tokens=2)
        first = engine.step()
        assert first.prefill_tokens == 4
        assert request.n_generated == 0  # prompt not yet covered
        engine.run_until_idle()
        np.testing.assert_array_equal(
            request.tokens, reference_tokens(smoke_model, request)
        )

    def test_blocks_released_on_finish(self, smoke_model):
        engine = small_engine(smoke_model)
        engine.submit(np.arange(6), max_new_tokens=3)
        engine.run_until_idle()
        assert engine.pool.used_blocks == 0


class TestLifecycleControls:
    def test_cancel_queued_request(self, smoke_model):
        engine = small_engine(smoke_model)
        request = engine.submit(np.arange(4), max_new_tokens=4)
        assert engine.cancel(request.request_id)
        assert request.state is RequestState.CANCELLED
        assert not engine.has_work

    def test_cancel_running_request_frees_blocks(self, smoke_model):
        engine = small_engine(smoke_model)
        request = engine.submit(np.arange(4), max_new_tokens=16)
        engine.step()
        assert engine.pool.used_blocks > 0
        assert engine.cancel(request.request_id)
        assert engine.pool.used_blocks == 0
        assert not engine.cancel(request.request_id)  # already terminal

    def test_deadline_expires_queued_request(self, smoke_model):
        engine = small_engine(smoke_model)
        request = engine.submit(np.arange(4), max_new_tokens=4, deadline=1.0, now=0.0)
        engine.step(now=2.0)
        assert request.state is RequestState.CANCELLED
        assert request.finish_reason == "deadline"

    def test_deadline_in_future_still_runs(self, smoke_model):
        engine = small_engine(smoke_model)
        request = engine.submit(np.arange(4), max_new_tokens=2, deadline=1e9)
        engine.run_until_idle()
        assert request.state is RequestState.FINISHED


class TestContinuousBatching:
    def test_decode_rows_batched_together(self, smoke_model):
        engine = small_engine(smoke_model)
        for seed in range(3):
            engine.submit(np.arange(4) + seed, max_new_tokens=8)
        engine.step()  # all three prefill
        report = engine.step()
        assert report.decode_rows == 3

    def test_late_arrival_joins_running_batch(self, smoke_model):
        engine = small_engine(smoke_model)
        engine.submit(np.arange(6), max_new_tokens=10)
        engine.step()
        engine.step()
        engine.submit(np.arange(4), max_new_tokens=2)
        report = engine.step()
        assert report.decode_rows == 1 and report.prefill_rows == 1

    def test_token_budget_caps_step(self, smoke_model):
        engine = small_engine(smoke_model, max_batch=4, token_budget=10)
        for _ in range(4):
            engine.submit(np.arange(8), max_new_tokens=2)
        report = engine.step()
        assert report.prefill_tokens <= 10


class TestTokenIdentityProperty:
    """Engine output == sequential greedy_generate, for any interleaving."""

    @pytest.mark.parametrize(
        "blocks,budget,batch",
        [(24, 24, 4), (6, 24, 4), (4, 24, 4), (24, 8, 8), (5, 12, 3)],
    )
    def test_trace_replay_token_identical(
        self, smoke_model, smoke_config, blocks, budget, batch
    ):
        trace = poisson_trace(
            10,
            rate_rps=500.0,
            vocab_size=smoke_config.vocab_size,
            prompt_len=(2, 16),
            new_tokens=(1, 8),
            seed=blocks + budget,
        )
        engine = small_engine(
            smoke_model, n_blocks=blocks, token_budget=budget, max_batch=batch
        )
        requests = replay_trace(engine, trace)
        finished = [r for r in requests if r.state is RequestState.FINISHED]
        assert finished, "trace produced no finished requests"
        for request in finished:
            np.testing.assert_array_equal(
                request.tokens, reference_tokens(smoke_model, request)
            )

    def test_preemption_exercised_and_harmless(self, smoke_model, smoke_config):
        trace = poisson_trace(
            12,
            rate_rps=1000.0,
            vocab_size=smoke_config.vocab_size,
            prompt_len=(8, 16),
            new_tokens=(4, 10),
            seed=7,
        )
        engine = small_engine(smoke_model, n_blocks=5, block_tokens=8)
        requests = replay_trace(engine, trace)
        assert engine.metrics.preemptions > 0, "pool was never under pressure"
        for request in requests:
            assert request.state is RequestState.FINISHED
            np.testing.assert_array_equal(
                request.tokens, reference_tokens(smoke_model, request)
            )

    def test_results_in_submission_order(self, smoke_model, smoke_config):
        trace = poisson_trace(
            6, rate_rps=300.0, vocab_size=smoke_config.vocab_size, seed=11
        )
        engine = small_engine(smoke_model)
        replay_trace(engine, trace)
        results = engine.results()
        assert [r.request_id for r in results] == sorted(r.request_id for r in results)
        assert all(r.ok for r in results)
