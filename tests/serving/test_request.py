"""Request lifecycle, validation, and timing bookkeeping."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import GenerationRequest, RequestState


def make_request(**overrides):
    defaults = dict(
        request_id=0,
        prompt=np.array([1, 2, 3]),
        max_new_tokens=4,
        arrival_time=1.0,
    )
    defaults.update(overrides)
    return GenerationRequest(**defaults)


class TestValidation:
    def test_empty_prompt_rejected(self):
        with pytest.raises(ServingError):
            make_request(prompt=np.array([], dtype=np.int64))

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ServingError):
            make_request(max_new_tokens=0)

    def test_prompt_flattened_to_int64(self):
        request = make_request(prompt=[[4, 5]])
        assert request.prompt.dtype == np.int64
        assert request.prompt.shape == (2,)


class TestLifecycle:
    def test_initial_state(self):
        request = make_request()
        assert request.state is RequestState.QUEUED
        assert not request.done
        assert request.n_generated == 0
        np.testing.assert_array_equal(request.prefix, request.prompt)

    def test_prefix_includes_generated(self):
        request = make_request()
        request.generated.extend([7, 8])
        np.testing.assert_array_equal(request.prefix, [1, 2, 3, 7, 8])
        np.testing.assert_array_equal(request.tokens, request.prefix)

    def test_result_requires_terminal_state(self):
        request = make_request()
        with pytest.raises(ServingError):
            request.result()
        request.state = RequestState.FINISHED
        request.finish_reason = "max-tokens"
        result = request.result()
        assert result.ok
        assert result.finish_reason == "max-tokens"

    def test_rejected_result_not_ok(self):
        request = make_request()
        request.state = RequestState.REJECTED
        assert not request.result().ok


class TestTiming:
    def test_unscheduled_timings_are_none(self):
        request = make_request()
        assert request.queue_wait_s is None
        assert request.ttft_s is None
        assert request.e2e_s is None

    def test_timings_relative_to_arrival(self):
        request = make_request(arrival_time=2.0)
        request.first_scheduled_time = 2.5
        request.first_token_time = 3.0
        request.finish_time = 4.0
        assert request.queue_wait_s == pytest.approx(0.5)
        assert request.ttft_s == pytest.approx(1.0)
        assert request.e2e_s == pytest.approx(2.0)
