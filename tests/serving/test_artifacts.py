"""Run artifacts: manifest/metrics/summary round-trip and trace replay."""

import json

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    EngineConfig,
    load_run,
    shared_prefix_trace,
    trace_from_manifest,
    trace_manifest,
    write_run_artifact,
)
from repro.serving.artifacts import records_by_variant
from repro.serving.bench import run_serve_bench


@pytest.fixture(scope="module")
def report(smoke_model, smoke_config):
    trace = shared_prefix_trace(
        8,
        rate_rps=100.0,
        vocab_size=smoke_config.vocab_size,
        n_tenants=2,
        prefix_tokens=16,
        seed=3,
    )
    return run_serve_bench(
        smoke_model,
        ["dense", "rank8"],
        trace,
        engine_config=EngineConfig(
            max_batch=4, token_budget=32, n_blocks=32, block_tokens=8
        ),
        seed=3,
        trace_info={"family": "prefix"},
    )


@pytest.fixture()
def manifest():
    return {
        "name": "test-run",
        "model": "smoke-llama",
        "seed": 3,
        "trace": trace_manifest(
            "prefix", 8, 100.0, 128, 3, n_tenants=2, prefix_tokens=16
        ),
    }


class TestWriteAndLoad:
    def test_round_trip(self, tmp_path, manifest, report):
        run_dir = write_run_artifact(tmp_path / "run", manifest, report)
        assert (run_dir / "manifest.json").exists()
        assert (run_dir / "metrics.jsonl").exists()
        assert (run_dir / "summary.json").exists()
        loaded_manifest, summary, records = load_run(run_dir)
        assert loaded_manifest == manifest
        assert summary["model"] == report.model
        assert summary["trace_info"]["family"] == "prefix"
        # One metrics line per (variant, request); none left in the summary.
        assert len(records) == 2 * 8
        for result in summary["results"]:
            assert "requests" not in result
            assert result["prefix_lookups"] >= 0
        grouped = records_by_variant(records)
        assert sorted(grouped) == ["dense", "rank8"]
        assert all(len(rows) == 8 for rows in grouped.values())
        for row in records:
            assert {"request_id", "generated", "ttft_s"} <= set(row)

    def test_metrics_jsonl_is_line_delimited(self, tmp_path, manifest, report):
        run_dir = write_run_artifact(tmp_path / "run", manifest, report)
        lines = (run_dir / "metrics.jsonl").read_text().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_manifest_without_trace_rejected(self, tmp_path, report):
        with pytest.raises(ServingError, match="trace"):
            write_run_artifact(tmp_path / "run", {"name": "x"}, report)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ServingError, match="missing"):
            load_run(tmp_path)


class TestTraceReplay:
    def test_manifest_replays_bit_identical(self, manifest):
        first = trace_from_manifest(manifest)
        second = trace_from_manifest(manifest)
        assert len(first) == 8
        for x, y in zip(first, second):
            assert x.arrival_time == y.arrival_time
            np.testing.assert_array_equal(x.prompt, y.prompt)
            assert x.max_new_tokens == y.max_new_tokens
            assert x.tenant == y.tenant

    def test_replay_survives_json_round_trip(self, tmp_path, manifest, report):
        """Params serialized to disk (tuples become lists) must still
        rebuild the identical trace."""
        run_dir = write_run_artifact(tmp_path / "run", manifest, report)
        loaded, _, _ = load_run(run_dir)
        original = trace_from_manifest(manifest)
        replayed = trace_from_manifest(loaded)
        for x, y in zip(original, replayed):
            assert x.arrival_time == y.arrival_time
            np.testing.assert_array_equal(x.prompt, y.prompt)

    def test_missing_trace_key_raises(self):
        with pytest.raises(ServingError, match="missing key"):
            trace_from_manifest({"trace": {"family": "prefix"}})


class TestReferenceRun:
    """The checked-in reference run must stay loadable and replayable."""

    REFERENCE = "benchmarks/runs/prefix-share-reference"

    def test_reference_run_loads_and_replays(self):
        manifest, summary, records = load_run(self.REFERENCE)
        trace = trace_from_manifest(manifest)
        assert len(trace) == manifest["trace"]["n_requests"]
        assert summary["results"], "reference summary has no results"
        result = summary["results"][0]
        assert result["tokens_match_unshared"] is True
        assert result["prefix_hits"] > 0
        assert result["prefill_tokens_saved"] > 0
        assert records, "reference run has no per-request records"

    ROUTED_REFERENCE = "benchmarks/runs/slo-router-reference"

    def test_routed_reference_run_loads_and_replays(self):
        manifest, summary, records = load_run(self.ROUTED_REFERENCE)
        trace = trace_from_manifest(manifest)
        assert len(trace) == manifest["trace"]["n_requests"]
        assert manifest["router"] == "slo"
        vs_fixed = summary["goodput_vs_fixed"]
        assert vs_fixed["beats_best_fixed"] is True
        assert vs_fixed["routed"] > vs_fixed["best_fixed"]
        assert any(record.get("qos") for record in records)


@pytest.fixture(scope="module")
def routed_report(smoke_model, smoke_config):
    from repro.serving import RouterConfig, make_trace

    trace = make_trace(
        "bursty",
        10,
        150.0,
        smoke_config.vocab_size,
        seed=4,
        prompt_len=(6, 12),
        new_tokens=(4, 8),
        qos_mix={"gold": 0.3, "interactive": 0.3, "batch": 0.4},
    )
    return run_serve_bench(
        smoke_model,
        ["dense", "rank8", "rank1"],
        trace,
        engine_config=EngineConfig(
            max_batch=4, token_budget=32, n_blocks=48, block_tokens=8
        ),
        seed=4,
        router="slo",
        # Hair-trigger hysteresis so even this tiny burst produces a
        # decision log to persist.
        router_config=RouterConfig(degrade_at=2, upgrade_at=0, dwell_steps=1),
        trace_info={"family": "bursty"},
    )


@pytest.fixture()
def routed_manifest():
    return {
        "name": "routed-run",
        "model": "smoke-llama",
        "seed": 4,
        "router": "slo",
        "trace": trace_manifest(
            "bursty",
            10,
            150.0,
            128,
            4,
            prompt_len=[6, 12],
            new_tokens=[4, 8],
            qos_mix={"gold": 0.3, "interactive": 0.3, "batch": 0.4},
        ),
    }


class TestReportRendering:
    def test_report_md_written(self, tmp_path, manifest, report):
        run_dir = write_run_artifact(tmp_path / "run", manifest, report)
        text = (run_dir / "report.md").read_text()
        assert "# serve-bench run: smoke-llama" in text
        assert "| dense " in text
        # An unrouted run renders no router/QoS sections.
        assert "Router decisions" not in text
        assert not (run_dir / "router.jsonl").exists()

    def test_routed_run_gets_router_log_and_sections(
        self, tmp_path, routed_manifest, routed_report
    ):
        run_dir = write_run_artifact(
            tmp_path / "run", routed_manifest, routed_report
        )
        text = (run_dir / "report.md").read_text()
        assert "## Per-class outcomes" in text
        assert "## Router decisions" in text
        assert "slo-router" in text
        assert "**Goodput:**" in text
        decisions = [
            json.loads(line)
            for line in (run_dir / "router.jsonl").read_text().splitlines()
            if line.strip()
        ]
        assert decisions, "routed run must persist its decision log"
        assert all(d["variant"] == "slo-router" for d in decisions)
        assert {"action", "from", "to", "step"} <= set(decisions[0])

    def test_routed_summary_round_trips(
        self, tmp_path, routed_manifest, routed_report
    ):
        run_dir = write_run_artifact(
            tmp_path / "run", routed_manifest, routed_report
        )
        _, summary, records = load_run(run_dir)
        assert summary["qos_info"]["ladder"] == ["dense", "rank8", "rank1"]
        assert summary["goodput_vs_fixed"] is not None
        routed_rows = [
            r for r in summary["results"] if r["spec"] == "slo-router"
        ]
        assert routed_rows and routed_rows[0]["goodput"]["eligible"] == 10
        assert any(record.get("qos") for record in records)

    def test_load_run_tolerates_missing_new_files(self, tmp_path, manifest, report):
        """Pre-QoS run directories have no report.md/router.jsonl."""
        run_dir = write_run_artifact(tmp_path / "run", manifest, report)
        (run_dir / "report.md").unlink()
        loaded_manifest, summary, records = load_run(run_dir)
        assert loaded_manifest["name"] == manifest["name"]
        assert summary["results"]


class TestTrajectory:
    def test_append_creates_and_stamps(self, tmp_path):
        from repro.serving import append_trajectory

        path = tmp_path / "nested" / "trajectory.jsonl"
        append_trajectory({"bench": "serve-bench", "model": "m"}, path=path)
        append_trajectory({"bench": "bench-decode", "date": "2001-01-01"}, path=path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["bench"] == "serve-bench"
        assert lines[0]["date"]  # stamped
        assert "commit" in lines[0]
        # Caller-provided stamps win.
        assert lines[1]["date"] == "2001-01-01"

    def test_repo_ledger_is_valid_jsonl(self):
        """The checked-in ledger must stay parseable line by line."""
        from pathlib import Path

        from repro.serving.artifacts import TRAJECTORY_PATH

        assert Path(TRAJECTORY_PATH).exists()
        for line in Path(TRAJECTORY_PATH).read_text().splitlines():
            entry = json.loads(line)
            assert "bench" in entry and "date" in entry
