"""Fixtures for the serving tests: one small shared Llama."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model
from repro.models.config import ModelConfig


@pytest.fixture(scope="session")
def smoke_config() -> ModelConfig:
    """Small enough to step in milliseconds, deep enough to be honest (GQA)."""
    return ModelConfig(
        name="smoke-llama",
        family="llama",
        vocab_size=128,
        dim=32,
        n_layers=3,
        n_heads=4,
        n_kv_heads=2,
        mlp_hidden=64,
        max_seq_len=96,
    )


@pytest.fixture(scope="session")
def smoke_model(smoke_config):
    model = build_model(smoke_config, rng=np.random.default_rng(0))
    model.eval()
    return model
