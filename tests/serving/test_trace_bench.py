"""Synthetic traces and the serve-bench harness."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    poisson_trace,
    replay_trace,
    run_serve_bench,
)


class TestPoissonTrace:
    def test_deterministic_for_seed(self):
        first = poisson_trace(5, 10.0, vocab_size=64, seed=3)
        second = poisson_trace(5, 10.0, vocab_size=64, seed=3)
        for a, b in zip(first, second):
            assert a.arrival_time == b.arrival_time
            np.testing.assert_array_equal(a.prompt, b.prompt)

    def test_arrivals_sorted_and_positive(self):
        trace = poisson_trace(20, 100.0, vocab_size=64, seed=0)
        arrivals = [t.arrival_time for t in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0.0

    def test_ranges_respected(self):
        trace = poisson_trace(
            30, 50.0, vocab_size=16, prompt_len=(3, 5), new_tokens=(2, 2), seed=1
        )
        for request in trace:
            assert 3 <= request.prompt.size <= 5
            assert request.max_new_tokens == 2
            assert request.prompt.max() < 16

    def test_validation(self):
        with pytest.raises(ServingError):
            poisson_trace(0, 1.0, vocab_size=8)
        with pytest.raises(ServingError):
            poisson_trace(1, -1.0, vocab_size=8)
        with pytest.raises(ServingError):
            poisson_trace(1, 1.0, vocab_size=8, prompt_len=(5, 2))


class TestReplayTrace:
    def test_all_requests_reach_terminal_state(self, smoke_model, smoke_config):
        trace = poisson_trace(8, 200.0, vocab_size=smoke_config.vocab_size, seed=2)
        engine = InferenceEngine(
            smoke_model,
            EngineConfig(max_batch=4, token_budget=32, n_blocks=32, block_tokens=8),
        )
        requests = replay_trace(engine, trace)
        assert len(requests) == len(trace)
        assert all(r.done for r in requests)
        assert not engine.has_work
        assert engine.pool.used_blocks == 0

    def test_latencies_on_virtual_clock(self, smoke_model, smoke_config):
        trace = poisson_trace(6, 100.0, vocab_size=smoke_config.vocab_size, seed=4)
        engine = InferenceEngine(
            smoke_model,
            EngineConfig(max_batch=4, token_budget=32, n_blocks=32, block_tokens=8),
        )
        requests = replay_trace(engine, trace)
        for request in requests:
            assert request.ttft_s is not None and request.ttft_s >= 0.0
            assert request.e2e_s >= request.ttft_s


class TestRunServeBench:
    def test_reports_all_variants_with_projection(self, smoke_model):
        trace = poisson_trace(
            6, 100.0, vocab_size=smoke_model.config.vocab_size, seed=5
        )
        config = EngineConfig(max_batch=4, token_budget=32, n_blocks=32, block_tokens=8)
        report = run_serve_bench(
            smoke_model, ["dense", "rank1"], trace, engine_config=config
        )
        assert [r.spec for r in report.results] == ["dense", "rank1"]
        dense = report.result_for("dense")
        assert dense.finished == 6
        assert dense.decode_tokens_per_s > 0.0
        assert dense.projection.tokens_per_second > 0.0
        assert report.speedup_over_dense("rank1") > 0.0
        table = report.table()
        assert "dense" in table and "rank1" in table

    def test_requires_a_variant(self, smoke_model):
        with pytest.raises(ServingError):
            run_serve_bench(smoke_model, [], [])

    def test_unknown_variant_in_lookup(self, smoke_model):
        trace = poisson_trace(2, 100.0, vocab_size=smoke_model.config.vocab_size)
        config = EngineConfig(max_batch=2, token_budget=16, n_blocks=16, block_tokens=8)
        report = run_serve_bench(smoke_model, ["dense"], trace, engine_config=config)
        with pytest.raises(ServingError):
            report.result_for("pr33")
