"""A tour of the decomposition design-space formalization (Section 3).

Walks Definitions 2-5, Proposition 3.1, and Theorem 3.2 on real model
configurations — all analytic, runs in under a second:

    python examples/design_space_tour.py
"""

from dataclasses import replace

from repro.decomposition import (
    DecompositionConfig,
    PAPER_TABLE4,
    count_design_space,
    design_space_log2,
    design_space_size,
    format_scale,
    pruned_design_space,
    table4_layers,
)
from repro.models import LLAMA2_7B, get_config
from repro.models.params import parameter_reduction


def main() -> None:
    # --- Definition 4: a configuration γ = (PR, Layers, Tensors) ----------
    gamma = DecompositionConfig.all_tensors(LLAMA2_7B, table4_layers(9), rank=1)
    print("γ for the paper's 9% recipe:", gamma.describe())

    # --- Proposition 3.1: validity -----------------------------------------
    print("valid on Llama-2-7B?", gamma.is_valid(LLAMA2_7B))
    bogus = DecompositionConfig.uniform([99], ["w_q"])
    print("layer 99 valid?", bogus.is_valid(LLAMA2_7B))

    # --- Theorem 3.2: the design space is astronomically large -------------
    print("\nTable 2 (design-space scale):")
    for name, tensors in (("bert-base", 6), ("bert-large", 6),
                          ("llama2-7b", 5), ("llama2-70b", 5)):
        config = get_config(name)
        size = design_space_size(config.n_layers, tensors, 1)
        print(f"  {name:<12} layers={config.n_layers:<3} -> {format_scale(size)}")

    # --- Verify the theorem by brute force on a small model ----------------
    small = replace(get_config("tiny-llama").with_vocab(16), n_layers=2)
    counted = count_design_space(small, rank_choices=[1, 2])
    predicted = design_space_size(2, small.n_tensors, 2)
    print(f"\nbrute force on a 2-layer model: counted={counted}, "
          f"Theorem 3.2 predicts={predicted}")

    # --- Characterization prunes the space to O(#recipes) ------------------
    layer_sets = [table4_layers(pct) for pct in sorted(PAPER_TABLE4)]
    reduced = pruned_design_space(LLAMA2_7B, layer_sets)
    print(f"\nafter characterization: {format_scale(2**37)} -> "
          f"{len(reduced)} candidate configurations")
    for gamma in reduced[1:4]:
        reduction = parameter_reduction(
            LLAMA2_7B, gamma.layers, gamma.roles, gamma.rank
        )
        print(f"  {100 * reduction:5.1f}% reduction <- layers {gamma.layers}")


if __name__ == "__main__":
    main()
