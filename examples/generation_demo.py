"""KV-cache generation demo: ask the trained model questions and time the
cached vs recompute decoding paths.

    python examples/generation_demo.py
"""

import time

import numpy as np

from repro.experiments import get_world, pretrained_tiny_llama
from repro.hwmodel import A100_80GB, generation_profile
from repro.models import LLAMA2_7B


def main() -> None:
    model, tokenizer = pretrained_tiny_llama()
    world = get_world()

    questions = [
        f"question : where does {world.people[0].name} live ? answer :",
        f"question : what does {world.people[1].name} like ? answer :",
        f"question : what is the capital of {list(world.capital_of)[0]} ? answer :",
    ]
    print("asking the trained tiny Llama:")
    for question in questions:
        prompt = np.asarray(tokenizer.encode(question))
        out = model.greedy_generate(prompt, 3, stop_token=tokenizer.eos_id)
        answer = tokenizer.decode(out[len(prompt):]).split(".")[0].strip()
        print(f"  {question} -> {answer}")

    prompt = np.asarray(tokenizer.encode(f"{world.people[2].name} goes to the"))
    start = time.perf_counter()
    model.greedy_generate(prompt, 30, use_cache=True)
    cached_s = time.perf_counter() - start
    start = time.perf_counter()
    model.greedy_generate(prompt, 30, use_cache=False)
    recompute_s = time.perf_counter() - start
    print(f"\n30-token decode: cached {1000 * cached_s:.0f} ms vs "
          f"full recompute {1000 * recompute_s:.0f} ms")

    # The analytic view of the same phases at paper scale.
    profile = generation_profile(LLAMA2_7B, A100_80GB, batch=1,
                                 prompt_len=128, new_tokens=128)
    print(
        f"\nanalytic Llama-2-7B on one A100: prefill {1000 * profile.prefill_s:.0f} ms, "
        f"{1000 * profile.decode_s_per_token:.1f} ms/token decode "
        f"({profile.tokens_per_second:.0f} tok/s), decode memory-bound fraction "
        f"{profile.decode_memory_bound_fraction:.2f}"
    )


if __name__ == "__main__":
    main()
