"""Quickstart: decompose a trained language model and measure the trade-off.

Runs in ~10 seconds once the cached tiny model exists (the first-ever run
trains it, ~4 minutes on a laptop):

    python examples/quickstart.py
"""

from repro.decomposition import DecompositionConfig, decomposed
from repro.eval import build_suite, evaluate_suite
from repro.experiments import get_world, pretrained_tiny_llama


def main() -> None:
    # 1. A trained Llama-style model and its tokenizer (cached on disk).
    model, tokenizer = pretrained_tiny_llama()
    print(f"model: {model.config.name}, {model.num_parameters():,} parameters")

    # 2. A benchmark suite mirroring the paper's six LLM benchmarks.
    suite = build_suite(get_world(), names=("arc_easy", "arc_challenge"), n_items=100)
    baseline = evaluate_suite(model, tokenizer, suite)
    print("\nbaseline accuracy")
    print(baseline.table())

    # 3. A decomposition configuration γ: rank-1 Tucker on all seven weight
    #    tensors of two spread-apart middle layers (the paper's recipe
    #    shape: avoid the first/last layers, spread the rest).
    config = DecompositionConfig.all_tensors(model.config, layers=(3, 8), rank=1)
    print(f"\napplying: {config.describe()}")

    # 4. Decompose (restores automatically on exit), and re-evaluate.
    with decomposed(model, config) as report:
        print(report.summary())
        compressed = evaluate_suite(model, tokenizer, suite)
    print("\naccuracy after decomposition")
    print(compressed.table())

    for name in suite:
        drop = 100 * (baseline.accuracy(name) - compressed.accuracy(name))
        print(f"{name}: {drop:+.1f} %p accuracy change at "
              f"{100 * report.parameter_reduction:.1f}% fewer parameters")


if __name__ == "__main__":
    main()
