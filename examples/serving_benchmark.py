"""Serving benchmark demo: continuous batching over dense vs decomposed
variants of the serve-llama model.

Replays one synthetic Poisson trace through the in-process inference engine
for each variant, then prints measured TTFT/throughput percentiles next to
the analytic roofline projection.  At serve-llama's width (dim 384) the
rank-1 factorized matmuls genuinely beat dense GEMMs in NumPy, so the
measured decode speedup points the same way as the paper's A100 serving
results (Figure 10).

    python examples/serving_benchmark.py [n_requests]
"""

import sys

import numpy as np

from repro.models import build_model, get_config
from repro.serving import EngineConfig, poisson_trace, run_serve_bench


def main() -> None:
    n_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    config = get_config("serve-llama")
    model = build_model(config, rng=np.random.default_rng(0))
    model.eval()

    trace = poisson_trace(
        n_requests=n_requests,
        rate_rps=50.0,
        vocab_size=config.vocab_size,
        prompt_len=(8, 32),
        new_tokens=(4, 16),
        seed=3,
    )
    report = run_serve_bench(
        model,
        ["dense", "pr33"],
        trace,
        engine_config=EngineConfig(
            max_batch=8, token_budget=64, n_blocks=256, block_tokens=16
        ),
    )
    print(report.table())
    speedup = report.speedup_over_dense("pr33")
    print(f"\npr33 measured decode speedup over dense: {speedup:.2f}x")
    dense = report.result_for("dense")
    print(
        f"dense engine: mean decode batch {dense.mean_decode_batch:.1f}, "
        f"queue wait p50 {1000 * dense.queue_wait_p50_s:.1f} ms, "
        f"e2e p95 {1000 * dense.e2e_p95_s:.1f} ms"
    )


if __name__ == "__main__":
    main()
