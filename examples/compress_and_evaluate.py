"""The paper's case study (Figure 9) end to end: sweep the Table 4
parameter-reduction recipes on the trained tiny Llama and report accuracy
on all seven benchmarks.

    python examples/compress_and_evaluate.py [items-per-benchmark]
"""

import sys

from repro.experiments.tradeoff import (
    format_accuracy_tradeoff,
    run_accuracy_tradeoff,
)


def main(limit: int = 60) -> None:
    print("Sweeping Table 4 reduction recipes on the trained tiny Llama...")
    points = run_accuracy_tradeoff(
        reduction_targets=(6, 9, 15, 21, 33, 48, 96), limit=limit
    )
    print(format_accuracy_tradeoff(points))

    baseline = points[0]
    print("\nheadline (paper Section 4.4):")
    for point in points[1:]:
        drop = 100 * (baseline.mean_accuracy - point.mean_accuracy)
        print(
            f"  {100 * point.actual_reduction:5.1f}% fewer parameters -> "
            f"{drop:+5.1f} %p mean accuracy"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
