"""Compare the three compression levers on one trained model: low-rank
decomposition (the paper's subject) vs quantization vs magnitude pruning.

    python examples/compression_comparison.py [items-per-benchmark]
"""

import sys

from repro.compression import (
    prune_model_weights,
    quantize_model_weights,
    restore_pruned,
    restore_quantized,
)
from repro.decomposition import DecompositionConfig, decomposed, suggest_layers
from repro.eval import build_suite, evaluate_suite
from repro.experiments import get_world, pretrained_tiny_llama
from repro.experiments.ascii_chart import bar_chart


def main(limit: int = 60) -> None:
    model, tokenizer = pretrained_tiny_llama()
    suite = build_suite(get_world(), names=("arc_easy", "arc_challenge", "winogrande"))
    all_layers = tuple(range(model.config.n_layers))
    roles = model.config.tensor_roles

    rows = []
    baseline = evaluate_suite(model, tokenizer, suite, limit=limit).mean_accuracy
    rows.append(("dense fp16", 0.0, baseline))

    # Low-rank decomposition with the insight-driven layer recipe.
    layers = suggest_layers(model.config, target_reduction=0.15)
    gamma = DecompositionConfig.all_tensors(model.config, layers, rank=1)
    with decomposed(model, gamma) as report:
        accuracy = evaluate_suite(model, tokenizer, suite, limit=limit).mean_accuracy
    rows.append((f"tucker r1 x{len(layers)}L", report.parameter_reduction, accuracy))

    for bits in (8, 4):
        report = quantize_model_weights(model, all_layers, roles, bits=bits)
        try:
            accuracy = evaluate_suite(model, tokenizer, suite, limit=limit).mean_accuracy
        finally:
            restore_quantized(model, report)
        rows.append((f"int{bits} quant", report.memory_reduction, accuracy))

    for sparsity in (0.5, 0.9):
        report = prune_model_weights(model, all_layers, roles, sparsity)
        try:
            accuracy = evaluate_suite(model, tokenizer, suite, limit=limit).mean_accuracy
        finally:
            restore_pruned(model, report)
        rows.append((f"prune {int(100 * sparsity)}%", report.memory_reduction, accuracy))

    print(f"{'method':<18}{'memory saving':>14}{'mean accuracy':>15}")
    for name, saving, accuracy in rows:
        print(f"{name:<18}{100 * saving:>13.1f}%{100 * accuracy:>14.1f}%")

    print("\naccuracy by method:")
    print(bar_chart([r[0] for r in rows], [100 * r[2] for r in rows], max_value=100.0))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
