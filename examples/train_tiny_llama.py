"""Train a tiny Llama from scratch on the synthetic world and evaluate it.

Shows the full substrate the reproduction is built on: world generation,
corpus rendering, tokenizer construction, NumPy-autograd training, and the
benchmark harness.  Takes a few minutes:

    python examples/train_tiny_llama.py [steps]
"""

import sys
from dataclasses import replace

import numpy as np

from repro.data import World, build_corpus, corpus_stats, corpus_vocabulary
from repro.eval import WordTokenizer, build_suite, evaluate_suite
from repro.models import build_model, get_config
from repro.training import TrainConfig, train_causal_lm


def main(steps: int = 300) -> None:
    # 1. Generate the synthetic knowledge world and its training corpus.
    world = World.build(seed=0)
    print(world.summary())
    corpus = build_corpus(world)
    print("corpus:", corpus_stats(corpus))

    # 2. Build the tokenizer over the world's closed vocabulary.
    tokenizer = WordTokenizer(corpus_vocabulary(world))
    print(f"vocabulary: {tokenizer.vocab_size} words")

    # 3. A small Llama-style decoder (RMSNorm + RoPE + SwiGLU).
    config = replace(
        get_config("tiny-llama").with_vocab(tokenizer.vocab_size), n_layers=6
    )
    model = build_model(config, rng=np.random.default_rng(0))
    print(f"model: {config.n_layers} layers, dim {config.dim}, "
          f"{model.num_parameters():,} parameters")

    # 4. Train with AdamW + warmup-cosine.
    log = train_causal_lm(
        model, tokenizer, corpus,
        TrainConfig(steps=steps, batch_size=64, lr=3e-3,
                    warmup_steps=min(50, steps // 4)),
        verbose=True,
    )
    print(f"trained {log.steps} steps in {log.seconds:.0f}s, "
          f"final loss {log.smoothed_final_loss():.3f}")

    # 5. Evaluate on the benchmark suite.
    suite = build_suite(world, n_items=60)
    result = evaluate_suite(model, tokenizer, suite)
    print(result.table())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
