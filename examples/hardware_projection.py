"""Project latency / energy / memory of decomposed Llama-2-7B on 4x A100
(Figures 10-12) with the analytic hardware model, and demonstrate the
paper's nvidia-smi-style power-trace energy methodology.

    python examples/hardware_projection.py
"""

from repro.decomposition import DecompositionConfig, table4_layers
from repro.hwmodel import (
    A100_80GB,
    ServingConfig,
    compare_to_baseline,
    measure_energy_like_paper,
    profile,
)
from repro.models import LLAMA2_7B


def main() -> None:
    serving = ServingConfig()  # 4x A100-80GB, data parallel, seq 128
    baseline = profile(LLAMA2_7B, serving)
    print(
        f"dense Llama-2-7B: batch {baseline.batch}, "
        f"{baseline.latency_s:.2f} s/batch, {baseline.energy_j / 1000:.1f} kJ, "
        f"{baseline.memory_per_gpu_gb:.1f} GB/GPU"
    )
    print(f"memory-bound fraction of kernels: {baseline.memory_bound_fraction:.2f}")

    print("\nreduction -> latency / energy / memory savings (Figures 10-12):")
    for target in (6, 9, 15, 21, 33, 48, 60, 75, 84, 96):
        config = DecompositionConfig.all_tensors(
            LLAMA2_7B, table4_layers(target), rank=1
        )
        result = compare_to_baseline(LLAMA2_7B, config, serving)
        print(
            f"  {target:>3}% params: speedup {result['speedup']:.2f}x, "
            f"latency -{100 * result['latency_saving']:.1f}%, "
            f"energy -{100 * result['energy_saving']:.1f}%, "
            f"memory -{100 * result['memory_saving']:.1f}%"
        )

    # The paper's energy methodology: run >= 2 minutes at steady state and
    # integrate the sampled power trace.
    per_batch, trace = measure_energy_like_paper(
        A100_80GB, batch_latency_s=baseline.latency_s
    )
    print(
        f"\npower-trace methodology: {trace.duration_s:.0f} s trace, "
        f"mean {trace.mean_watts:.0f} W -> {per_batch / 1000:.1f} kJ/batch/GPU"
    )


if __name__ == "__main__":
    main()
